"""Trace exporters: JSON-lines, Chrome ``trace_event`` and a console tree.

All three consume the same input: a :class:`~repro.observe.tracer.SpanTracer`,
a single :class:`~repro.observe.span.Span`, or a list of root spans.

* :func:`to_jsonl` / :func:`from_jsonl` — one JSON object per span, parented
  by integer ids; lossless round-trip of names, timing, attributes, launch
  deltas, flops/bytes and events.
* :func:`to_chrome_trace` / :func:`save_chrome_trace` — the Chrome
  ``trace_event`` JSON object format (``{"traceEvents": [...]}``) with
  complete (``"ph": "X"``) events for spans and instant (``"ph": "i"``)
  events for span events.  Load the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
* :func:`console_tree` — indented text rendering with per-span duration,
  share of the root's time, and launch/flop attribution.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Union

from .span import Span

TraceSource = Union[Span, Sequence[Span], "SpanTracerLike"]


class SpanTracerLike:  # pragma: no cover - typing aid only
    roots: List[Span]


def _roots(source: TraceSource) -> List[Span]:
    """Normalize any accepted trace source to a list of root spans."""
    if isinstance(source, Span):
        return [source]
    roots = getattr(source, "roots", None)
    if roots is not None:
        return list(roots)
    return list(source)


def _all_spans(source: TraceSource) -> List[Span]:
    spans: List[Span] = []
    for root in _roots(source):
        spans.extend(root.walk())
    return spans


def _json_safe(value: object) -> object:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


# --------------------------------------------------------------------- JSONL
def to_jsonl(source: TraceSource) -> str:
    """Serialize a trace as JSON-lines: one span per line, tree via ids."""
    lines = []
    span_ids: Dict[int, int] = {}
    next_id = 0
    for root in _roots(source):
        for span in root.walk():
            span_ids[id(span)] = next_id
            record = span.to_dict()
            record["attributes"] = _json_safe(record["attributes"])
            record["events"] = _json_safe(record["events"])
            record["id"] = next_id
            record["parent_id"] = (
                span_ids[id(span.parent)] if span.parent is not None else None
            )
            lines.append(json.dumps(record, sort_keys=True))
            next_id += 1
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> List[Span]:
    """Rebuild root spans from :func:`to_jsonl` output (round-trip inverse)."""
    spans: Dict[int, Span] = {}
    roots: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        span = Span(
            name=record["name"],
            category=record.get("category", ""),
            start=record.get("start", 0.0),
            end=record.get("end"),
            attributes=dict(record.get("attributes", {})),
            launches={k: int(v) for k, v in record.get("launches", {}).items()},
            calls={k: int(v) for k, v in record.get("calls", {}).items()},
            flops=int(record.get("flops", 0)),
            bytes=int(record.get("bytes", 0)),
        )
        for event in record.get("events", []):
            span.add_event(
                event["name"], event.get("timestamp", 0.0),
                **event.get("attributes", {})
            )
        spans[record["id"]] = span
        parent_id = record.get("parent_id")
        if parent_id is None:
            roots.append(span)
        else:
            parent = spans[parent_id]
            span.parent = parent
            parent.children.append(span)
    return roots


# -------------------------------------------------------------- Chrome trace
def to_chrome_trace(source: TraceSource, pid: int = 1, tid: int = 1) -> Dict[str, object]:
    """Trace in Chrome ``trace_event`` JSON object format.

    Timestamps are microseconds relative to the earliest span start, spans
    become complete events (``"ph": "X"``) and span events become thread-
    scoped instant events (``"ph": "i"``).
    """
    spans = _all_spans(source)
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "repro"},
        }
    ]
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(span.start for span in spans)

    def usec(t: float) -> float:
        return (t - t0) * 1e6

    for span in spans:
        args: Dict[str, object] = dict(_json_safe(span.attributes))
        if span.launches:
            args["launches"] = dict(span.launches)
            args["total_launches"] = span.total_launches
        if span.calls:
            args["total_calls"] = span.total_calls
        if span.flops:
            args["flops"] = span.flops
        if span.bytes:
            args["bytes"] = span.bytes
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": usec(span.start),
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": span.category or "span",
                    "ph": "i",
                    "s": "t",
                    "ts": usec(event.timestamp),
                    "pid": pid,
                    "tid": tid,
                    "args": dict(_json_safe(event.attributes)),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(source: TraceSource, path: str, **kwargs: int) -> str:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    trace = to_chrome_trace(source, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return path


# ------------------------------------------------------------- console tree
def _format_span(span: Span, root_duration: float) -> str:
    ms = span.duration * 1e3
    pct = 100.0 * span.duration / root_duration if root_duration > 0 else 0.0
    parts = [f"{ms:9.2f} ms", f"{pct:5.1f}%"]
    if span.launches:
        parts.append(f"launches={span.total_launches}")
    if span.flops:
        parts.append(f"flops={span.flops:.3g}" if span.flops >= 1e6
                     else f"flops={span.flops}")
    if span.bytes:
        parts.append(f"bytes={span.bytes}")
    if span.events:
        parts.append(f"events={len(span.events)}")
    return "  ".join(parts)


def console_tree(source: TraceSource, min_duration: float = 0.0) -> str:
    """Indented text rendering of the span forest.

    Spans shorter than ``min_duration`` seconds are folded away (their time
    still shows in the parent).
    """
    lines: List[str] = []

    def render(span: Span, depth: int, root_duration: float) -> None:
        indent = "  " * depth
        label = f"{indent}{span.name}"
        lines.append(f"{label:<48}{_format_span(span, root_duration)}")
        for child in span.children:
            if child.duration >= min_duration:
                render(child, depth + 1, root_duration)

    for root in _roots(source):
        render(root, 0, root.duration)
    return "\n".join(lines)

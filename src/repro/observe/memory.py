"""Memory observability: buffer accounting and per-span peak attribution.

Two complementary instruments answer "where did the bytes go":

* :class:`MemoryLedger` — a process-wide registry that the long-lived buffer
  owners report into: constructed operators (basis/coupling/dense stacks),
  compiled apply and construction plans (workspace), and the artifact cache
  (cache).  Every entry is keyed by owner and split over the five canonical
  categories (:data:`CATEGORIES`); :meth:`MemoryLedger.track` registers an
  owner through a weak reference so the bytes disappear from the ledger when
  the owning object is garbage-collected.  Totals are mirrored into the
  process metrics registry as ``memory.<category>.bytes`` gauges, so the
  OpenMetrics exposition (:mod:`repro.observe.openmetrics`) scrapes them for
  free.

* :class:`MemorySampler` — per-span *peak* attribution.  Attached to a
  :class:`~repro.observe.tracer.SpanTracer` (``SpanTracer(memory=...)`` or
  ``ExecutionPolicy(memory_profile=True)``), it brackets every span with
  :mod:`tracemalloc` readings plus an RSS sample and stores
  ``mem_peak_bytes`` / ``mem_current_bytes`` / ``mem_rss_bytes`` attributes
  on the span — visible in the console tree, the Chrome trace ``args`` and
  :meth:`repro.diagnostics.PhaseBreakdown.from_span`.  The sampler maintains
  its own frame stack and folds :func:`tracemalloc.get_traced_memory` peaks
  into every open frame at each span boundary, so nested spans attribute
  peaks correctly even though the interpreter keeps a single global peak.

The default is the usual zero-overhead posture: no sampler is attached and
nothing reports into the ledger from the per-apply hot loop — accounting
happens at compile/construct/put time, never per launch.
"""

from __future__ import annotations

import itertools
import tracemalloc
import weakref
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, metrics as _global_metrics

#: Canonical byte categories of the ledger.
CATEGORIES = ("basis", "coupling", "dense", "workspace", "cache")

#: ``memory_bytes()`` component key -> ledger category.  Anything unknown
#: (``low_rank``, factor blocks, ...) counts as low-rank coupling data.
_COMPONENT_CATEGORY = {
    "basis": "basis",
    "coupling": "coupling",
    "dense": "dense",
    "workspace": "workspace",
    "cache": "cache",
}


def categorize_operator_bytes(components: Dict[str, int]) -> Dict[str, int]:
    """Map an operator's ``memory_bytes()`` dict onto the ledger categories.

    The unified ``total`` key is always derived and dropped; ``low_rank`` is
    dropped too when format-specific component keys (``basis``/``coupling``)
    are present, because the protocol derives it from them.
    """
    comps = {k: int(v) for k, v in components.items() if k != "total"}
    if any(k not in ("low_rank", "dense") for k in comps):
        comps.pop("low_rank", None)
    out: Dict[str, int] = {}
    for key, value in comps.items():
        category = _COMPONENT_CATEGORY.get(key, "coupling")
        out[category] = out.get(category, 0) + value
    return out


class MemoryLedger:
    """Process-wide byte accounting by owner and category.

    Owners report with :meth:`account` (explicit lifecycle) or :meth:`track`
    (weakref-managed: the entry is released when the object dies).  Category
    totals are mirrored as ``memory.<category>.bytes`` gauges into the
    process metrics registry on every mutation.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self._entries: Dict[str, Dict[str, int]] = {}
        self._metrics = metrics
        self._ids = itertools.count()

    # ----------------------------------------------------------------- updates
    def account(self, owner: str, categories: Dict[str, int]) -> str:
        """Set (replace) the byte accounting of ``owner``; returns the key."""
        entry = {}
        for category, nbytes in categories.items():
            if category not in CATEGORIES:
                raise ValueError(
                    f"unknown memory category {category!r}; use one of {CATEGORIES}"
                )
            entry[category] = int(nbytes)
        self._entries[owner] = entry
        self._publish()
        return owner

    def release(self, owner: str) -> None:
        """Drop the accounting of ``owner`` (missing owners are ignored)."""
        if self._entries.pop(owner, None) is not None:
            self._publish()

    def track(
        self, obj: object, categories: Dict[str, int], owner: Optional[str] = None
    ) -> str:
        """Account ``obj`` and auto-release when it is garbage-collected."""
        if owner is None:
            owner = f"{type(obj).__name__}#{next(self._ids)}"
        self.account(owner, categories)
        try:
            weakref.finalize(obj, self.release, owner)
        except TypeError:  # non-weakref-able owner: explicit release only
            pass
        return owner

    def reset(self) -> None:
        self._entries.clear()
        self._publish()

    # ------------------------------------------------------------------ totals
    def by_category(self) -> Dict[str, int]:
        """Current bytes per category (every canonical category present)."""
        totals = {category: 0 for category in CATEGORIES}
        for entry in self._entries.values():
            for category, nbytes in entry.items():
                totals[category] += nbytes
        return totals

    def total_bytes(self) -> int:
        return sum(self.by_category().values())

    def by_owner(self) -> Dict[str, Dict[str, int]]:
        return {owner: dict(entry) for owner, entry in self._entries.items()}

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view (JSON-serializable)."""
        return {
            "total_bytes": self.total_bytes(),
            "by_category": self.by_category(),
            "owners": self.by_owner(),
        }

    def _publish(self) -> None:
        registry = self._metrics if self._metrics is not None else _global_metrics()
        for category, nbytes in self.by_category().items():
            registry.gauge(f"memory.{category}.bytes").set(float(nbytes))


_LEDGER: Optional[MemoryLedger] = None


def memory_ledger() -> MemoryLedger:
    """The process-wide ledger (created on first use)."""
    global _LEDGER
    if _LEDGER is None:
        _LEDGER = MemoryLedger()
    return _LEDGER


def reset_memory_ledger() -> None:
    """Drop every ledger entry (test isolation; a no-op before first use)."""
    if _LEDGER is not None:
        _LEDGER.reset()


# ---------------------------------------------------------------- RSS reading
def rss_bytes() -> int:
    """Current resident-set size of this process in bytes (0 if unknown)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        import resource

        return pages * resource.getpagesize()
    except (OSError, ValueError, IndexError, ImportError):
        pass
    try:  # fallback: peak RSS (kilobytes on Linux)
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover - exotic OS
        return 0


class MemorySampler:
    """Per-span peak-memory attribution over :mod:`tracemalloc`.

    ``enter()`` pushes a frame, ``exit(frame)`` pops it and returns the span
    attributes.  At every boundary the interpreter's global allocation peak is
    folded into *all* open frames before being reset, so a parent span's peak
    is never lost to a child's reset and nested attribution stays exact.

    Parameters
    ----------
    sample_rss:
        Also record the process RSS at span exit (``mem_rss_bytes``).
    """

    def __init__(self, sample_rss: bool = True):
        self.sample_rss = bool(sample_rss)
        self._stack: List[List[int]] = []
        self._owns_tracemalloc = False
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def close(self) -> None:
        """Stop tracemalloc if this sampler started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    def _fold_peak(self) -> int:
        """Fold the global peak into every open frame; returns current bytes."""
        current, peak = tracemalloc.get_traced_memory()
        for frame in self._stack:
            if peak > frame[1]:
                frame[1] = peak
        tracemalloc.reset_peak()
        return current

    def enter(self) -> List[int]:
        current = self._fold_peak()
        frame = [current, current]  # [bytes at entry, peak bytes observed]
        self._stack.append(frame)
        return frame

    def exit(self, frame: List[int]) -> Dict[str, int]:
        current = self._fold_peak()
        if self._stack and self._stack[-1] is frame:
            self._stack.pop()
        else:  # unbalanced exit: stay consistent (mirrors the tracer stack)
            try:
                self._stack.remove(frame)
            except ValueError:
                pass
        out = {
            "mem_peak_bytes": max(0, frame[1] - frame[0]),
            "mem_current_bytes": max(0, current - frame[0]),
        }
        if self.sample_rss:
            out["mem_rss_bytes"] = rss_bytes()
        return out

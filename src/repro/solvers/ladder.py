"""Solver escalation ladder: CG → preconditioned CG → GMRES(m) → direct.

A single Krylov method with a fixed iteration budget either converges or it
does not; the ladder turns "does not" into a *policy-driven escalation*
instead of a silent ``converged=False``.  Each rung runs inside its own
``resilience/ladder:<rung>`` span, increments the ``resilience.escalations``
counter when it is entered as an escalation, and warm-starts from the best
iterate of the rungs before it:

``cg``
    Plain conjugate gradients — the cheap path that succeeds for
    well-conditioned systems.
``pcg``
    CG preconditioned by a (lazily built) HODLR factorization of the system
    operator.
``gmres``
    Restarted GMRES(m) — drops the SPD assumption CG relies on, with the
    same preconditioner when one exists.
``direct``
    The HODLR factorization applied as a *direct* solve, polished by a few
    preconditioned CG steps; its residual is verified explicitly, so even
    the last rung cannot return an unverified answer.

The rung order and budgets come from
:class:`~repro.resilience.RecoveryPolicy` (``ladder``, ``rung_maxiter``,
``gmres_restart``); rungs whose ingredients are unavailable (no factorization
obtainable for ``pcg``/``direct``) are skipped, not failed.  When every rung
is exhausted the ladder raises
:class:`~repro.resilience.EscalationExhaustedError` carrying the best result
(in ``warn`` mode it warns and returns the flagged best result instead) —
never a silent wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observe.metrics import metrics as _metrics
from ..observe.tracer import NOOP_TRACER
from ..resilience.errors import EscalationExhaustedError
from ..resilience.policy import RecoveryPolicy, resilience_adapter
from .krylov import KrylovResult, cg, gmres

#: Rung names the ladder understands (the default order lives in
#: :data:`repro.resilience.DEFAULT_LADDER`).
RUNGS = ("cg", "pcg", "gmres", "direct")


@dataclass
class RungReport:
    """Outcome of one rung of the ladder."""

    rung: str
    converged: bool
    iterations: int
    final_residual: float
    elapsed_seconds: float
    skipped: bool = False
    reason: str = ""

    def summary(self) -> Dict[str, object]:
        return {
            "rung": self.rung,
            "converged": self.converged,
            "iterations": self.iterations,
            "final_residual": self.final_residual,
            "time_s": self.elapsed_seconds,
            **({"skipped": True, "reason": self.reason} if self.skipped else {}),
        }


def _factorization_for(
    a: object, shift: float, tracer: object
) -> Optional[object]:
    """A HODLR factorization of ``a + shift I``, or ``None`` when unobtainable.

    Accepts HODLR matrices directly, flattens weak-admissibility H2/HSS
    output, and falls back to the :func:`repro.api.conversion.convert`
    registry for other hierarchical operators.  Dense arrays and black-box
    operators return ``None`` — the factorization rungs are then skipped.
    """
    from ..hmatrix.hodlr import HODLRMatrix
    from .hodlr_factor import HODLRFactorization

    hodlr: Optional[HODLRMatrix] = None
    if isinstance(a, HODLRMatrix):
        hodlr = a
    elif hasattr(a, "tree") and hasattr(a, "basis"):
        try:
            from ..hmatrix.hodlr import _hodlr_from_h2

            hodlr = _hodlr_from_h2(a)
        except Exception:
            try:
                from ..api.conversion import convert

                hodlr = convert(a, "hodlr")
            except Exception:
                return None
    if hodlr is None:
        return None
    try:
        return HODLRFactorization(hodlr, shift=shift, tracer=tracer)
    except Exception:
        return None


def _residual(op, b: np.ndarray, x: np.ndarray, b_norm: float) -> float:
    return float(np.linalg.norm(b - op.matvec(x))) / b_norm


def escalation_ladder(
    a: object,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    shift: float = 0.0,
    maxiter: Optional[int] = None,
    factorization: Optional[object] = None,
    recovery: Optional[RecoveryPolicy] = None,
    rungs: Optional[Sequence[str]] = None,
    x0: Optional[np.ndarray] = None,
    tracer: object = None,
    faults: object = None,
    health: object = None,
) -> KrylovResult:
    """Solve ``(a + shift I) x = b``, escalating through the solver ladder.

    Parameters
    ----------
    a:
        The system operator *without* the shift — anything
        :func:`~repro.hmatrix.linear_operator.as_linear_operator` accepts.
        Passing the raw (hierarchical) operator lets the ladder build the
        HODLR factorization of its ``pcg``/``direct`` rungs lazily.
    tol:
        Relative residual target shared by every rung.
    maxiter:
        Per-rung iteration budget override
        (default: ``RecoveryPolicy.rung_maxiter``).
    factorization:
        An existing :class:`~repro.solvers.hodlr_factor.HODLRFactorization`
        of ``a + shift I`` (e.g. from ``Session.factor``); when omitted the
        ladder builds one on first use and reuses it across rungs.
    recovery:
        The :class:`~repro.resilience.RecoveryPolicy` supplying the rung
        order, budgets and the exhaustion behaviour (default:
        ``RecoveryPolicy()``, i.e. ``recover`` mode).
    rungs:
        Explicit rung subset/order (default: ``recovery.ladder``) — used by
        ``Session.solve`` to resume the ladder *after* the rung that
        already failed.
    x0:
        Warm-start iterate (later rungs always warm-start from the best
        iterate so far).
    faults:
        A :class:`~repro.resilience.FaultInjector`; ``stall-convergence``
        caps the first fired rung's ``maxiter`` so escalation is exercised
        deterministically.

    Returns
    -------
    KrylovResult
        The converged result, with ``extra["escalation"]`` recording every
        rung (:class:`RungReport` summaries) and the rung that converged.

    Raises
    ------
    EscalationExhaustedError
        When no rung reaches ``tol`` (except in ``warn`` mode, which warns
        and returns the best — explicitly flagged — result).
    """
    from ..hmatrix.linear_operator import as_linear_operator

    recovery = recovery if recovery is not None else RecoveryPolicy()
    tracer = tracer if tracer is not None else NOOP_TRACER
    order = tuple(rungs) if rungs is not None else recovery.ladder
    unknown = [r for r in order if r not in RUNGS]
    if unknown:
        raise ValueError(f"unknown ladder rungs {unknown}; available: {list(RUNGS)}")

    op = as_linear_operator(a, shift=shift, n=np.asarray(b).shape[0])
    b_arr = np.asarray(b, dtype=np.float64).reshape(-1)
    b_norm = float(np.linalg.norm(b_arr))
    budget = int(maxiter) if maxiter is not None else recovery.rung_maxiter

    reports: List[RungReport] = []
    best: Optional[KrylovResult] = None
    factor = factorization
    factor_missing = False  # tried and failed: don't retry per rung
    start = time.perf_counter()
    escalations = 0

    def ensure_factorization() -> Optional[object]:
        nonlocal factor, factor_missing
        if factor is None and not factor_missing:
            factor = _factorization_for(a, shift, tracer)
            factor_missing = factor is None
        return factor

    for position, rung in enumerate(order):
        m = ensure_factorization() if rung in ("pcg", "gmres", "direct") else None
        if rung in ("pcg", "direct") and m is None:
            reports.append(RungReport(
                rung, False, 0, np.inf, 0.0, skipped=True,
                reason="no factorization obtainable",
            ))
            continue
        rung_budget = budget
        if faults is not None:
            rung_budget = faults.stall_maxiter(rung_budget)
        guess = best.x if best is not None else x0
        if best is not None:
            # Entering a further rung after an attempted one IS an escalation
            # (skipped rungs — no factorization — do not count).
            escalations += 1
            _metrics().counter("resilience.escalations").inc()
        elapsed = time.perf_counter()
        with tracer.span(
            f"resilience/ladder:{rung}", category="resilience",
            rung=rung, position=position, maxiter=rung_budget,
        ) as span:
            if rung == "cg":
                result = cg(op, b_arr, tol=tol, maxiter=rung_budget, x0=guess,
                            tracer=tracer, health=health)
            elif rung == "pcg":
                result = cg(op, b_arr, tol=tol, maxiter=rung_budget, M=m,
                            x0=guess, tracer=tracer, health=health)
                result.method = "pcg"
            elif rung == "gmres":
                result = gmres(op, b_arr, tol=tol, maxiter=rung_budget,
                               restart=recovery.gmres_restart, M=m, x0=guess,
                               tracer=tracer, health=health)
            else:  # direct
                t0 = time.perf_counter()
                x = np.asarray(m.solve(b_arr), dtype=np.float64).reshape(-1)
                rel = _residual(op, b_arr, x, b_norm) if b_norm else 0.0
                if rel > tol:
                    # The factorization approximates the operator at its own
                    # (construction) accuracy; polish with preconditioned CG.
                    polish = cg(op, b_arr, tol=tol, maxiter=rung_budget, M=m,
                                x0=x, tracer=tracer, health=health)
                    result = polish
                    result.method = "direct+pcg"
                else:
                    result = KrylovResult(
                        x=x, converged=True, iterations=0,
                        residual_norms=np.asarray([rel]), method="direct",
                        matvecs=1, preconditioner_applications=1,
                        elapsed_seconds=time.perf_counter() - t0,
                    )
            span.set(converged=result.converged,
                     final_residual=result.final_residual)
        reports.append(RungReport(
            rung, result.converged, result.iterations,
            result.final_residual, time.perf_counter() - elapsed,
        ))
        if best is None or result.final_residual < best.final_residual:
            best = result
        if result.converged:
            break

    attempted = [r for r in reports if not r.skipped]
    escalation: Dict[str, object] = {
        "rungs": [r.summary() for r in reports],
        "escalations": escalations,
        "converged_rung": reports[-1].rung if best is not None and best.converged else None,
    }
    if best is None:
        raise EscalationExhaustedError(
            f"every ladder rung of {list(order)} was skipped "
            "(no factorization obtainable and no Krylov rung configured)",
            context=escalation,
        )
    best.extra["escalation"] = escalation
    best.elapsed_seconds = time.perf_counter() - start
    if best.converged:
        return best
    message = (
        f"escalation ladder exhausted after {len(attempted)} rungs "
        f"({[r.rung for r in attempted]}); best residual "
        f"{best.final_residual:.3e} > tol {tol:.3e}"
    )
    if recovery.mode == "warn":
        resilience_adapter().warn(
            "escalation-exhausted", final_residual=best.final_residual,
            tol=tol, rungs=str([r.rung for r in attempted]),
        )
        return best
    raise EscalationExhaustedError(message, result=best, context=escalation)

"""Solver subsystem: Krylov methods + hierarchical factorization/preconditioning.

Everything the library constructs (H2/HSS/HODLR/H matrices, sketching
operators, dense and sparse matrices) plugs into the same three layers:

* :mod:`~repro.solvers.krylov` — matrix-free CG / GMRES(m) / BiCGStab with
  residual histories and pluggable preconditioners;
* :mod:`~repro.solvers.hodlr_factor` — a recursive HODLR/HSS factorization
  (block elimination + Woodbury) giving near-linear direct solves and
  log-determinants for weak-admissibility output of the constructor;
* :mod:`~repro.solvers.preconditioner` — loose sketched constructions applied
  as ``M^{-1}`` inside the Krylov loop;
* :mod:`~repro.solvers.multifrontal_solve` — a nested-dissection sparse solve
  whose large fronts are compressed with the sketching constructor (the
  paper's application scenario);
* :mod:`~repro.solvers.ladder` — the resilience escalation ladder
  (CG → preconditioned CG → GMRES(m) → HODLR direct) entered on
  non-converged solves under a :class:`~repro.resilience.RecoveryPolicy`.
"""

from .hodlr_factor import HODLRFactorization
from .krylov import KrylovResult, bicgstab, cg, gmres
from .ladder import RungReport, escalation_ladder
from .multifrontal_solve import FrontReport, MultifrontalSolver
from .preconditioner import HierarchicalPreconditioner

__all__ = [
    "cg",
    "gmres",
    "bicgstab",
    "escalation_ladder",
    "KrylovResult",
    "RungReport",
    "HODLRFactorization",
    "HierarchicalPreconditioner",
    "MultifrontalSolver",
    "FrontReport",
]

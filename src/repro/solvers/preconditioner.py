"""Hierarchical preconditioning: loose sketched factorizations inside Krylov loops.

The paper's application scenario (Fig. 6b) compresses frontal matrices so a
sparse direct solver can afford them as *approximate* factors; the same idea
applies to dense kernel systems.  A :class:`HierarchicalPreconditioner` runs
the existing sketching constructor at a **loose tolerance** (orders of
magnitude looser than the solve tolerance), flattens the weak-admissibility
output to HODLR form and factors it once; each Krylov iteration then applies
``M^{-1}`` through the near-linear :class:`~repro.solvers.hodlr_factor.HODLRFactorization`
solve.  Because the construction cost scales with the (low) preconditioner
rank, the setup is cheap even when the accurate compression would not be.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from ..hmatrix.hodlr import HODLRMatrix, _hodlr_from_h2, build_hodlr
from ..hmatrix.hss import _build_hss
from ..tree.cluster_tree import ClusterTree
from ..utils.rng import SeedLike
from ..utils.timing import PhaseTimer
from .hodlr_factor import HODLRFactorization

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.builder import ConstructionResult
    from ..sketching.entry_extractor import EntryExtractor
    from ..sketching.operators import SketchingOperator


class HierarchicalPreconditioner:
    """Apply ``M^{-1}`` from an approximate hierarchical factorization.

    Instances are accepted directly as the ``M`` argument of
    :func:`repro.solvers.krylov.cg` / ``gmres`` / ``bicgstab``.  Use the
    classmethods to build one:

    * :meth:`from_operator` — run the paper's sketching constructor (weak
      admissibility, i.e. ``repro.compress(..., format="hss")``) on a black-box
      operator at a loose tolerance; the intended path when the system matrix
      is only available through matvecs.
    * :meth:`from_entries` — ACA-build a HODLR approximation from an
      entry-evaluation function.
    * :meth:`from_hodlr` — wrap an already-built HODLR matrix.
    """

    def __init__(
        self,
        factorization: HODLRFactorization,
        construction: Optional["ConstructionResult"] = None,
        setup_seconds: float = 0.0,
    ):
        self.factorization = factorization
        #: The loose :class:`~repro.core.builder.ConstructionResult` when the
        #: preconditioner was built with the sketching constructor.
        self.construction = construction
        self.setup_seconds = float(setup_seconds)

    # ---------------------------------------------------------------- builders
    @classmethod
    def from_operator(
        cls,
        tree: ClusterTree,
        operator: "SketchingOperator",
        extractor: "EntryExtractor",
        tolerance: float = 1e-2,
        shift: float = 0.0,
        sample_block_size: int = 64,
        max_samples: int | None = None,
        backend: str = "vectorized",
        seed: SeedLike = None,
    ) -> "HierarchicalPreconditioner":
        """Sketch an HSS approximation at ``tolerance`` and factor it.

        ``shift`` is added to the diagonal of the *factorization* only — the
        preconditioner approximates ``(A + shift I)^{-1}`` — which keeps a
        loose factorization of a barely-positive-definite matrix stable.
        """
        timer = PhaseTimer()
        with timer.phase("construction"):
            result = _build_hss(
                tree,
                operator,
                extractor,
                tolerance=tolerance,
                sample_block_size=sample_block_size,
                max_samples=max_samples,
                backend=backend,
                seed=seed,
            )
        with timer.phase("factorization"):
            factorization = HODLRFactorization(
                _hodlr_from_h2(result.matrix), shift=shift
            )
        return cls(
            factorization,
            construction=result,
            setup_seconds=timer.total(),
        )

    @classmethod
    def from_entries(
        cls,
        tree: ClusterTree,
        entries: Callable[[np.ndarray, np.ndarray], np.ndarray],
        tolerance: float = 1e-2,
        shift: float = 0.0,
        max_rank: int | None = None,
    ) -> "HierarchicalPreconditioner":
        """ACA-build a HODLR approximation from permuted-index entries and factor it."""
        timer = PhaseTimer()
        with timer.phase("construction"):
            hodlr = build_hodlr(tree, entries, tol=tolerance, max_rank=max_rank)
        with timer.phase("factorization"):
            factorization = HODLRFactorization(hodlr, shift=shift)
        return cls(factorization, setup_seconds=timer.total())

    @classmethod
    def from_hodlr(
        cls, hodlr: HODLRMatrix, shift: float = 0.0
    ) -> "HierarchicalPreconditioner":
        return cls(HODLRFactorization(hodlr, shift=shift))

    # ------------------------------------------------------------------- apply
    def solve(self, b: np.ndarray) -> np.ndarray:
        """``M^{-1} b`` in the original point ordering (the Krylov convention)."""
        return self.factorization.solve(b)

    def __call__(self, b: np.ndarray) -> np.ndarray:
        return self.solve(b)

    # ------------------------------------------------------------- diagnostics
    def statistics(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "n": self.factorization.tree.num_points,
            "factor_memory_mb": self.factorization.memory_bytes() / 2**20,
            "setup_seconds": self.setup_seconds,
            "shift": self.factorization.shift,
        }
        if self.construction is not None:
            lo, hi = self.construction.rank_range
            stats["construction_tolerance"] = self.construction.config.tolerance
            stats["rank_range"] = f"{lo}-{hi}"
            stats["total_samples"] = self.construction.total_samples
            stats["construction_kernel_calls"] = self.construction.total_kernel_calls
        return stats

"""Recursive HODLR factorization: near-linear direct solves and log-determinants.

A HODLR matrix over a node ``s`` with children ``c1, c2`` has the 2x2 block
form

    A_s = [[A_c1,          U12 V12^T],
           [U21 V21^T,     A_c2     ]]
        = D_s + P_s Q_s^T,          D_s = blkdiag(A_c1, A_c2),

with the thin factors ``P_s = blkdiag(U12, U21)`` and
``Q_s = [[0, V21], [V12, 0]]``.  Block elimination via the Woodbury identity
reduces a solve with ``A_s`` to two child solves plus a dense solve with the
small capacitance matrix ``C_s = I + Q_s^T D_s^{-1} P_s``:

    A_s^{-1} b = D_s^{-1} b - (D_s^{-1} P_s) C_s^{-1} Q_s^T (D_s^{-1} b).

The factorization precomputes ``D_s^{-1} P_s`` (by recursive child solves) and
an LU of every ``C_s`` bottom-up, after which each solve costs
``O(N k log N)``.  The matrix determinant lemma gives the log-determinant for
free: ``det(A_s) = det(A_c1) det(A_c2) det(C_s)``, accumulated from the leaf
LUs and the capacitance LUs — the standard route to Gaussian-process
log-likelihoods with hierarchical covariance matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
import scipy.linalg as sla

from ..hmatrix.hodlr import HODLRMatrix
from ..utils.validation import require


def _slogdet_from_lu(lu: np.ndarray, piv: np.ndarray) -> Tuple[float, float]:
    """``(sign, log|det|)`` of the matrix factored by :func:`scipy.linalg.lu_factor`."""
    diag = np.diag(lu)
    if diag.size == 0:
        return 1.0, 0.0
    # Non-finite pivots arise when an (exactly singular) earlier factor has
    # already poisoned the Woodbury data; report the matrix as singular.
    if not np.all(np.isfinite(diag)) or np.any(diag == 0.0):
        return 0.0, -np.inf
    swaps = int(np.sum(piv != np.arange(piv.shape[0])))
    sign = float((-1.0) ** swaps) * float(np.prod(np.sign(diag)))
    return sign, float(np.sum(np.log(np.abs(diag))))


@dataclass
class _LeafFactor:
    lu: np.ndarray
    piv: np.ndarray


@dataclass
class _NodeFactor:
    """Woodbury data of one internal node."""

    #: ``A_c1^{-1} U12`` and ``A_c2^{-1} U21`` (the two diagonal blocks of D^{-1}P).
    top: np.ndarray
    bottom: np.ndarray
    #: Right factors of the off-diagonal blocks (build ``Q^T z`` cheaply).
    v12: np.ndarray
    v21: np.ndarray
    cap_lu: np.ndarray
    cap_piv: np.ndarray


class HODLRFactorization:
    """Factor a :class:`~repro.hmatrix.hodlr.HODLRMatrix` for direct solves.

    Parameters
    ----------
    hodlr:
        The matrix to factor.  Must cover the whole cluster tree (every leaf
        has a dense diagonal block, every sibling pair a low-rank block —
        exactly what :func:`~repro.hmatrix.hodlr.build_hodlr` and
        ``repro.convert(h2, "hodlr")`` produce).
    shift:
        Optional diagonal shift: factors ``A + shift * I`` instead of ``A``
        (a nugget/regularization term, also the usual way to make a loose
        preconditioner factorization robustly invertible).
    tracer:
        Optional :class:`repro.observe.SpanTracer`; the factorization build
        runs inside a ``factor/hodlr`` span carrying ``n`` and ``shift``.
    """

    def __init__(self, hodlr: HODLRMatrix, shift: float = 0.0,
                 tracer: object | None = None):
        from ..observe.tracer import NOOP_TRACER

        self.hodlr = hodlr
        self.shift = float(shift)
        self.tree = hodlr.tree
        self._leaves: Dict[int, _LeafFactor] = {}
        self._nodes: Dict[int, _NodeFactor] = {}
        self._sign = 1.0
        self._logabsdet = 0.0
        tracer = tracer if tracer is not None else NOOP_TRACER
        with tracer.span(
            "factor/hodlr", category="factor",
            n=self.tree.num_points, shift=self.shift,
        ):
            self._factor(0)

    # ------------------------------------------------------------------ factor
    def _factor(self, node: int) -> None:
        tree = self.tree
        if tree.is_leaf(node):
            block = self.hodlr.diagonal.get(node)
            require(block is not None, f"leaf {node} has no dense diagonal block")
            a = np.array(block, dtype=np.float64)
            if self.shift:
                a[np.diag_indices_from(a)] += self.shift
            lu, piv = sla.lu_factor(a, check_finite=False)
            self._leaves[node] = _LeafFactor(lu=lu, piv=piv)
            self._accumulate_slogdet(*_slogdet_from_lu(lu, piv))
            return

        c1, c2 = tree.children(node)
        self._factor(c1)
        self._factor(c2)
        lr12 = self.hodlr.off_diagonal.get((c1, c2))
        lr21 = self.hodlr.off_diagonal.get((c2, c1))
        require(
            lr12 is not None and lr21 is not None,
            f"node {node} is missing an off-diagonal sibling block",
        )
        k1, k2 = lr12.rank, lr21.rank
        if k1 + k2 == 0:
            self._nodes[node] = _NodeFactor(
                top=np.zeros((tree.cluster_size(c1), 0)),
                bottom=np.zeros((tree.cluster_size(c2), 0)),
                v12=lr12.right,
                v21=lr21.right,
                cap_lu=np.zeros((0, 0)),
                cap_piv=np.zeros(0, dtype=np.int32),
            )
            return
        top = self._solve_node(c1, lr12.left)  # A_c1^{-1} U12, (n1, k1)
        bottom = self._solve_node(c2, lr21.left)  # A_c2^{-1} U21, (n2, k2)
        # C = I + Q^T D^{-1} P = [[I, V12^T bottom], [V21^T top, I]].
        cap = np.eye(k1 + k2)
        cap[:k1, k1:] += lr12.right.T @ bottom
        cap[k1:, :k1] += lr21.right.T @ top
        cap_lu, cap_piv = sla.lu_factor(cap, check_finite=False)
        self._accumulate_slogdet(*_slogdet_from_lu(cap_lu, cap_piv))
        self._nodes[node] = _NodeFactor(
            top=top,
            bottom=bottom,
            v12=lr12.right,
            v21=lr21.right,
            cap_lu=cap_lu,
            cap_piv=cap_piv,
        )

    def _accumulate_slogdet(self, sign: float, logabs: float) -> None:
        # Once any factor is singular the determinant is 0; keep the sign at
        # exactly 0.0 rather than letting NaNs from later factors propagate.
        self._sign = 0.0 if (sign == 0.0 or self._sign == 0.0) else self._sign * sign
        self._logabsdet += logabs

    # ------------------------------------------------------------------- solve
    def _solve_node(self, node: int, b: np.ndarray) -> np.ndarray:
        """Solve with the principal sub-matrix of cluster ``node`` (local rows)."""
        tree = self.tree
        if tree.is_leaf(node):
            factor = self._leaves[node]
            return sla.lu_solve((factor.lu, factor.piv), b, check_finite=False)
        c1, c2 = tree.children(node)
        n1 = tree.cluster_size(c1)
        z1 = self._solve_node(c1, b[:n1])
        z2 = self._solve_node(c2, b[n1:])
        data = self._nodes[node]
        k1 = data.top.shape[1]
        if k1 + data.bottom.shape[1] == 0:
            return np.concatenate([z1, z2], axis=0)
        rhs = np.concatenate([data.v12.T @ z2, data.v21.T @ z1], axis=0)
        y = sla.lu_solve((data.cap_lu, data.cap_piv), rhs, check_finite=False)
        x1 = z1 - data.top @ y[:k1]
        x2 = z2 - data.bottom @ y[k1:]
        return np.concatenate([x1, x2], axis=0)

    def solve(self, b: np.ndarray, permuted: bool = False) -> np.ndarray:
        """Solve ``(A + shift I) x = b`` for a vector or block of vectors.

        Like every format in the library the factorization lives in the
        cluster-tree ordering; by default ``b``/``x`` are in the original
        point ordering.
        """
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        if single:
            b = b[:, None]
        if b.shape[0] != self.tree.num_points:
            raise ValueError(
                f"dimension mismatch: matrix has {self.tree.num_points} rows, "
                f"b has {b.shape[0]}"
            )
        bp = b if permuted else b[self.tree.perm]
        xp = self._solve_node(0, bp)
        x = xp if permuted else xp[self.tree.iperm]
        return x[:, 0] if single else x

    # ------------------------------------------------------------ determinants
    def slogdet(self) -> Tuple[float, float]:
        """``(sign, log|det|)`` of the factored matrix, as :func:`numpy.linalg.slogdet`."""
        return self._sign, self._logabsdet

    def logdet(self) -> float:
        """``log det(A + shift I)``; raises for a non-positive determinant."""
        if self._sign <= 0.0:
            raise ValueError(
                f"matrix determinant is not positive (sign {self._sign:+.0f})"
            )
        return self._logabsdet

    @property
    def determinant_sign(self) -> float:
        """Sign of the determinant: ``+1.0``, ``-1.0`` or ``0.0`` (singular)."""
        return self._sign

    # ----------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Bytes held by the factorization (leaf LUs + Woodbury data)."""
        total = sum(f.lu.nbytes + f.piv.nbytes for f in self._leaves.values())
        for data in self._nodes.values():
            total += data.top.nbytes + data.bottom.nbytes
            total += data.cap_lu.nbytes + data.cap_piv.nbytes
        return int(total)

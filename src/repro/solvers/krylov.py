"""Matrix-free Krylov solvers: CG, restarted GMRES and BiCGStab.

The constructed hierarchical matrices are fast operators; these solvers turn
them into linear-system workloads (kernel regression, integral equations,
sparse PDE systems) without ever forming a dense matrix.  All three methods

* accept anything :func:`repro.hmatrix.linear_operator.as_linear_operator`
  understands as the system operator — hierarchical operators iterate on the
  compiled batched apply path (:mod:`repro.batched.apply_plan`), and the
  resulting backend/launch diagnostics are recorded in ``KrylovResult.extra``,
* accept a pluggable preconditioner (``None``, a callable ``x -> M^{-1} x``, or
  an object with ``solve``/``matvec`` such as
  :class:`repro.solvers.preconditioner.HierarchicalPreconditioner` or a
  :class:`repro.solvers.hodlr_factor.HODLRFactorization`),
* record the full relative-residual history in a :class:`KrylovResult` for the
  convergence diagnostics.

Convergence is declared when ``||b - A x|| / ||b|| <= tol`` (true residual for
CG/BiCGStab; for GMRES the recurrence residual, which coincides with the true
residual of the right-preconditioned system).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..hmatrix.linear_operator import LinearOperator, as_linear_operator

MatVec = Callable[[np.ndarray], np.ndarray]


@dataclass
class KrylovResult:
    """Outcome of a Krylov solve: the iterate plus convergence statistics."""

    x: np.ndarray
    converged: bool
    iterations: int
    #: Relative residual after every iteration; ``residual_norms[0]`` is the
    #: initial residual (1.0 for a zero initial guess).
    residual_norms: np.ndarray
    method: str
    matvecs: int
    preconditioner_applications: int
    elapsed_seconds: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def final_residual(self) -> float:
        return float(self.residual_norms[-1]) if self.residual_norms.size else np.inf

    def summary(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "n": int(self.x.shape[0]),
            "iterations": self.iterations,
            "matvecs": self.matvecs,
            "precond_applies": self.preconditioner_applications,
            "final_residual": self.final_residual,
            "converged": self.converged,
            "time_s": self.elapsed_seconds,
        }


class _Preconditioner:
    """Normalise the accepted preconditioner inputs and count applications."""

    def __init__(self, m: object | None):
        self.applications = 0
        if m is None:
            self._apply: Optional[MatVec] = None
        elif callable(getattr(m, "solve", None)):
            self._apply = m.solve  # factorization / preconditioner object
        elif isinstance(m, (np.ndarray, LinearOperator)) or hasattr(m, "matvec"):
            op = as_linear_operator(m)
            self._apply = op.matvec  # an explicit operator approximating A^{-1}
        elif callable(m):
            self._apply = m
        else:
            raise TypeError(f"cannot interpret {type(m).__name__} as a preconditioner")

    @property
    def is_identity(self) -> bool:
        return self._apply is None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self._apply is None:
            return x
        self.applications += 1
        return np.asarray(self._apply(x)).reshape(x.shape)


def _prepare(a: object, b: np.ndarray, x0: np.ndarray | None):
    op = as_linear_operator(a, n=np.asarray(b).shape[0])
    if np.iscomplexobj(b) or (x0 is not None and np.iscomplexobj(x0)):
        # Refuse rather than silently cast: the solvers iterate in float64,
        # and dropping the imaginary part would converge to the wrong system.
        raise TypeError(
            "Krylov solvers are real-valued: complex right-hand sides / "
            "initial guesses are not supported. Solve the real and imaginary "
            "parts separately, e.g. solve(A, b.real) and solve(A, b.imag)."
        )
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if op.shape != (b.shape[0], b.shape[0]):
        raise ValueError(
            f"operator shape {op.shape} incompatible with right-hand side of length {b.shape[0]}"
        )
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64).reshape(b.shape)
    )
    return op, b, x


def _apply_info(op: LinearOperator) -> Dict[str, object]:
    """Batched-apply diagnostics of the system operator, when it exposes them.

    H2 operators iterate on the compiled batched path
    (:mod:`repro.batched.apply_plan`); recording the backend name and its
    cumulative launch counter lets solver reports attribute per-solve launch
    costs.  Other operators contribute nothing.
    """
    backend = getattr(getattr(op, "source", None), "apply_backend", None)
    name = getattr(backend, "name", None)
    if name is None:
        return {}
    return {"apply_backend": name, "apply_launch_counter": backend.counter}


def _tracer_of(op: LinearOperator) -> object:
    """The tracer the solve should record to, discovered from the operator.

    Hierarchical operators carry their apply backend, and the backend carries
    the policy's tracer; everything else falls back to the no-op tracer.
    """
    from ..observe.tracer import NOOP_TRACER

    backend = getattr(getattr(op, "source", None), "apply_backend", None)
    return getattr(backend, "tracer", None) or NOOP_TRACER


def _traced_solve(method, tracer, body, op, b):
    """Run ``body()`` inside a ``solve/<method>`` span (or plainly when off)."""
    if not tracer.enabled:
        return body()
    with tracer.span(
        f"solve/{method}", category="solve", method=method, n=int(b.shape[0])
    ) as span:
        result = body()
        span.set(
            iterations=result.iterations,
            converged=result.converged,
            matvecs=result.matvecs,
            final_residual=result.final_residual,
        )
    return result


def _result(
    method: str,
    x: np.ndarray,
    history: List[float],
    converged: bool,
    matvecs: int,
    precond: _Preconditioner,
    start: float,
    tracer: object = None,
    health: object = None,
    **extra: object,
) -> KrylovResult:
    result = KrylovResult(
        x=x,
        converged=converged,
        iterations=max(0, len(history) - 1),
        residual_norms=np.asarray(history, dtype=np.float64),
        method=method,
        matvecs=matvecs,
        preconditioner_applications=precond.applications,
        elapsed_seconds=time.perf_counter() - start,
        extra=dict(extra),
    )
    if health is not None:
        from ..observe.health import record_solver_health
        from ..observe.tracer import NOOP_TRACER

        record_solver_health(result, health, tracer=tracer or NOOP_TRACER)
    return result


def cg(
    a: object,
    b: np.ndarray,
    tol: float = 1e-8,
    maxiter: int | None = None,
    M: object | None = None,
    x0: np.ndarray | None = None,
    callback: Callable[[int, float], None] | None = None,
    tracer: object | None = None,
    health: object | None = None,
) -> KrylovResult:
    """Preconditioned conjugate gradients for a symmetric positive-definite ``a``.

    Under an enabled tracer (passed explicitly or discovered from the
    operator's apply backend) the solve runs inside a ``solve/cg`` span with
    one ``iteration`` event per CG step.  ``health`` accepts
    :class:`~repro.observe.health.HealthThresholds` to run the post-hoc
    convergence diagnosis (events land in ``result.extra["health_events"]``).
    """
    start = time.perf_counter()
    op, b, x = _prepare(a, b, x0)
    tracer = tracer if tracer is not None else _tracer_of(op)
    return _traced_solve(
        "cg", tracer,
        lambda: _cg_body(op, b, x, tol, maxiter, M, callback, tracer, start,
                         health),
        op, b,
    )


def _cg_body(op, b, x, tol, maxiter, M, callback, tracer, start,
             health=None) -> KrylovResult:
    precond = _Preconditioner(M)
    n = b.shape[0]
    maxiter = n if maxiter is None else int(maxiter)

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return _result("cg", np.zeros_like(b), [0.0], True, 0, precond, start,
                       tracer=tracer, health=health)

    matvecs = 0
    r = b - op.matvec(x) if x.any() else b.copy()
    if x.any():
        matvecs += 1
    history = [float(np.linalg.norm(r)) / b_norm]
    if history[0] <= tol:
        return _result("cg", x, history, True, matvecs, precond, start,
                       tracer=tracer, health=health)

    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    converged = False
    for iteration in range(maxiter):
        ap = op.matvec(p)
        matvecs += 1
        denom = float(p @ ap)
        if denom <= 0.0:
            # Loss of positive definiteness (operator or preconditioner).
            break
        alpha = rz / denom
        x = x + alpha * p
        r = r - alpha * ap
        rel = float(np.linalg.norm(r)) / b_norm
        history.append(rel)
        if tracer.enabled:
            tracer.event("iteration", method="cg", iteration=iteration + 1,
                         residual=rel)
        if callback is not None:
            callback(iteration + 1, rel)
        if rel <= tol:
            converged = True
            break
        z = precond(r)
        rz_next = float(r @ z)
        p = z + (rz_next / rz) * p
        rz = rz_next
    return _result(
        "cg", x, history, converged, matvecs, precond, start,
        tracer=tracer, health=health, **_apply_info(op)
    )


def gmres(
    a: object,
    b: np.ndarray,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int | None = None,
    M: object | None = None,
    x0: np.ndarray | None = None,
    callback: Callable[[int, float], None] | None = None,
    tracer: object | None = None,
    health: object | None = None,
) -> KrylovResult:
    """Right-preconditioned restarted GMRES(m) for a general square ``a``.

    ``maxiter`` bounds the *total* number of inner iterations across restarts.
    Right preconditioning solves ``A M^{-1} u = b`` with ``x = M^{-1} u``, so
    the reported residuals are true residuals of the original system.  Under
    an enabled tracer the solve runs inside a ``solve/gmres`` span with one
    ``iteration`` event per inner iteration.
    """
    start = time.perf_counter()
    op, b, x = _prepare(a, b, x0)
    tracer = tracer if tracer is not None else _tracer_of(op)
    return _traced_solve(
        "gmres", tracer,
        lambda: _gmres_body(
            op, b, x, tol, restart, maxiter, M, callback, tracer, start, health
        ),
        op, b,
    )


def _gmres_body(op, b, x, tol, restart, maxiter, M, callback, tracer,
                start, health=None) -> KrylovResult:
    precond = _Preconditioner(M)
    n = b.shape[0]
    restart = max(1, min(int(restart), n))
    maxiter = n if maxiter is None else int(maxiter)

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return _result("gmres", np.zeros_like(b), [0.0], True, 0, precond,
                       start, tracer=tracer, health=health)

    matvecs = 0
    total_iterations = 0
    history: List[float] = []
    converged = False

    while True:
        r = b - op.matvec(x)
        matvecs += 1
        beta = float(np.linalg.norm(r))
        rel_true = beta / b_norm
        if not history:
            history.append(rel_true)
        else:
            # Replace the recurrence estimate with the true residual at the
            # restart boundary.
            history[-1] = rel_true
        if rel_true <= tol:
            converged = True
            break
        if total_iterations >= maxiter:
            break

        # Arnoldi process on A M^{-1} with modified Gram-Schmidt.
        v = np.zeros((n, restart + 1))
        h = np.zeros((restart + 1, restart))
        v[:, 0] = r / beta
        e1 = np.zeros(restart + 1)
        e1[0] = beta
        inner = 0
        y = np.zeros(0)
        for j in range(restart):
            if total_iterations >= maxiter:
                break
            w = op.matvec(precond(v[:, j]))
            matvecs += 1
            for i in range(j + 1):
                h[i, j] = float(w @ v[:, i])
                w = w - h[i, j] * v[:, i]
            h[j + 1, j] = float(np.linalg.norm(w))
            breakdown = h[j + 1, j] <= 1e-14 * beta
            if not breakdown:
                v[:, j + 1] = w / h[j + 1, j]
            inner = j + 1
            total_iterations += 1
            y, residual = _least_squares_residual(h[: inner + 1, :inner], e1[: inner + 1])
            rel = residual / b_norm
            history.append(rel)
            if tracer.enabled:
                tracer.event("iteration", method="gmres",
                             iteration=total_iterations, residual=rel)
            if callback is not None:
                callback(total_iterations, rel)
            if rel <= tol or breakdown:
                break
        if inner:
            x = x + precond(v[:, :inner] @ y)
        if history[-1] <= tol:
            # Recompute the true residual on the final iterate at the top of
            # the loop (one extra matvec) before declaring convergence.
            continue
        if total_iterations >= maxiter:
            break
    return _result(
        "gmres",
        x,
        history,
        converged,
        matvecs,
        precond,
        start,
        tracer=tracer,
        health=health,
        restart=restart,
        **_apply_info(op),
    )


def _least_squares_residual(h: np.ndarray, rhs: np.ndarray):
    """Solve the small Hessenberg least-squares problem and its residual norm."""
    y, res, _, _ = np.linalg.lstsq(h, rhs, rcond=None)
    if res.size:
        return y, float(np.sqrt(res[0]))
    return y, float(np.linalg.norm(h @ y - rhs))


def bicgstab(
    a: object,
    b: np.ndarray,
    tol: float = 1e-8,
    maxiter: int | None = None,
    M: object | None = None,
    x0: np.ndarray | None = None,
    callback: Callable[[int, float], None] | None = None,
    tracer: object | None = None,
    health: object | None = None,
) -> KrylovResult:
    """Preconditioned BiCGStab for a general square ``a`` (van der Vorst 1992).

    Under an enabled tracer the solve runs inside a ``solve/bicgstab`` span
    with one ``iteration`` event per step.
    """
    start = time.perf_counter()
    op, b, x = _prepare(a, b, x0)
    tracer = tracer if tracer is not None else _tracer_of(op)
    return _traced_solve(
        "bicgstab", tracer,
        lambda: _bicgstab_body(op, b, x, tol, maxiter, M, callback, tracer,
                               start, health),
        op, b,
    )


def _bicgstab_body(op, b, x, tol, maxiter, M, callback, tracer,
                   start, health=None) -> KrylovResult:
    precond = _Preconditioner(M)
    n = b.shape[0]
    maxiter = n if maxiter is None else int(maxiter)

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return _result("bicgstab", np.zeros_like(b), [0.0], True, 0, precond,
                       start, tracer=tracer, health=health)

    matvecs = 0
    r = b - op.matvec(x) if x.any() else b.copy()
    if x.any():
        matvecs += 1
    history = [float(np.linalg.norm(r)) / b_norm]
    if history[0] <= tol:
        return _result("bicgstab", x, history, True, matvecs, precond, start,
                       tracer=tracer, health=health)

    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    converged = False
    for iteration in range(maxiter):
        rho_next = float(r_hat @ r)
        if rho_next == 0.0 or omega == 0.0:
            break  # breakdown
        beta = (rho_next / rho) * (alpha / omega)
        rho = rho_next
        p = r + beta * (p - omega * v)
        p_hat = precond(p)
        v = op.matvec(p_hat)
        matvecs += 1
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) / b_norm <= tol:
            x = x + alpha * p_hat
            history.append(float(np.linalg.norm(s)) / b_norm)
            if tracer.enabled:
                tracer.event("iteration", method="bicgstab",
                             iteration=iteration + 1, residual=history[-1])
            if callback is not None:
                callback(iteration + 1, history[-1])
            converged = True
            break
        s_hat = precond(s)
        t = op.matvec(s_hat)
        matvecs += 1
        tt = float(t @ t)
        omega = float(t @ s) / tt if tt > 0.0 else 0.0
        x = x + alpha * p_hat + omega * s_hat
        r = s - omega * t
        rel = float(np.linalg.norm(r)) / b_norm
        history.append(rel)
        if tracer.enabled:
            tracer.event("iteration", method="bicgstab",
                         iteration=iteration + 1, residual=rel)
        if callback is not None:
            callback(iteration + 1, rel)
        if rel <= tol:
            converged = True
            break
    return _result(
        "bicgstab", x, history, converged, matvecs, precond, start,
        tracer=tracer, health=health, **_apply_info(op)
    )

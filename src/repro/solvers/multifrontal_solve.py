"""Nested-dissection multifrontal solve with sketch-compressed fronts.

This turns :mod:`repro.multifrontal` from a frontal-matrix *memory* study into
an actual sparse solver — the paper's application scenario: inside a
multifrontal factorization the large dense fronts (Schur complements of
nested-dissection separators) are compressed with the sketching constructor
and applied through the HODLR factorization, trading exactness for near-linear
front memory so the resulting solver acts as a preconditioner
(STRUMPACK's mode of operation in the Fig. 6b comparison).

The recursion mirrors geometric nested dissection: a (sub-)grid is split by
an axis-aligned separator plane, both halves are factored recursively, and the
separator's frontal matrix

    F = A_ss - A_sl A_ll^{-1} A_ls - A_sr A_rr^{-1} A_rs

is formed by solving against the half-domain factorizations.  A front of size
``>= compress_min_size`` is (when ``compress_tolerance`` is set) clustered by
its separator geometry, compressed with the weak-admissibility sketching
constructor and factored with
:class:`~repro.solvers.hodlr_factor.HODLRFactorization`; small fronts use a
dense LU.  With ``compress_tolerance=None`` every front is dense and the solve
is exact (a true — if reproduction-scale — sparse direct solver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..hmatrix.hodlr import _hodlr_from_h2
from ..hmatrix.hss import _build_hss
from ..multifrontal.poisson import grid_coordinates, poisson_grid_points
from ..sketching.entry_extractor import DenseEntryExtractor
from ..sketching.operators import DenseOperator
from ..tree.cluster_tree import ClusterTree
from ..utils.rng import SeedLike, as_generator
from .hodlr_factor import HODLRFactorization


@dataclass
class FrontReport:
    """Statistics of one factored front (separator Schur complement)."""

    level: int
    size: int
    compressed: bool
    dense_bytes: int
    factor_bytes: int
    rank_range: tuple = (0, 0)


class _LeafDomain:
    """A sub-grid factored directly with a sparse LU."""

    def __init__(self, indices: np.ndarray, matrix: sp.spmatrix):
        self.indices = indices
        self._lu = spla.splu(sp.csc_matrix(matrix[np.ix_(indices, indices)]))

    def solve(self, b: np.ndarray) -> np.ndarray:
        return self._lu.solve(b)


class _SeparatorDomain:
    """Two recursively factored halves glued by a (possibly compressed) front."""

    def __init__(
        self,
        left: "_LeafDomain | _SeparatorDomain",
        right: "_LeafDomain | _SeparatorDomain",
        separator: np.ndarray,
        matrix: sp.spmatrix,
        front_solve: Callable[[np.ndarray], np.ndarray],
    ):
        self.left = left
        self.right = right
        self.separator = separator
        self.indices = np.concatenate([left.indices, right.indices, separator])
        self._front_solve = front_solve
        # Couplings between the separator and each half, in the halves' orders.
        self._a_sl = sp.csr_matrix(matrix[np.ix_(separator, left.indices)])
        self._a_ls = sp.csr_matrix(matrix[np.ix_(left.indices, separator)])
        self._a_sr = sp.csr_matrix(matrix[np.ix_(separator, right.indices)])
        self._a_rs = sp.csr_matrix(matrix[np.ix_(right.indices, separator)])

    def solve(self, b: np.ndarray) -> np.ndarray:
        nl = self.left.indices.shape[0]
        nr = self.right.indices.shape[0]
        bl, br, bs = b[:nl], b[nl : nl + nr], b[nl + nr :]
        zl = self.left.solve(bl)
        zr = self.right.solve(br)
        rs = bs - self._a_sl @ zl - self._a_sr @ zr
        xs = self._front_solve(rs)
        xl = zl - self.left.solve(self._a_ls @ xs)
        xr = zr - self.right.solve(self._a_rs @ xs)
        return np.concatenate([xl, xr, xs])


class MultifrontalSolver:
    """Multifrontal solver for grid-structured sparse matrices.

    Build with :meth:`build`; apply with :meth:`solve` (a direct solve when
    fronts are exact, an approximate solve — i.e. a preconditioner — when
    fronts are compressed).  Pass an instance directly as the ``M`` argument
    of the Krylov solvers.
    """

    def __init__(
        self,
        root: "_LeafDomain | _SeparatorDomain",
        n: int,
        fronts: List[FrontReport],
    ):
        self._root = root
        self.n = int(n)
        self.fronts = fronts
        self._scatter = np.empty(n, dtype=np.int64)
        self._scatter[root.indices] = np.arange(n)

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        matrix: sp.spmatrix,
        grid_shape: Sequence[int],
        max_levels: int = 3,
        min_size: int = 3,
        compress_tolerance: float | None = None,
        compress_min_size: int = 256,
        compress_leaf_size: int = 32,
        seed: SeedLike = 0,
    ) -> "MultifrontalSolver":
        """Factor ``matrix`` (a ``grid_shape`` finite-difference operator).

        Parameters mirror :func:`repro.multifrontal.nested_dissection.nested_dissection`
        (``max_levels``, ``min_size`` control the dissection) plus the front
        compression policy: fronts of at least ``compress_min_size`` unknowns
        are compressed with the sketching constructor at
        ``compress_tolerance`` (``None`` disables compression everywhere).
        """
        matrix = sp.csr_matrix(matrix)
        grid_shape = tuple(int(s) for s in grid_shape)
        n = matrix.shape[0]
        if n != int(np.prod(grid_shape)):
            raise ValueError(
                f"matrix has {n} rows but grid {grid_shape} has {int(np.prod(grid_shape))} points"
            )
        coords = np.stack(grid_coordinates(grid_shape), axis=1)
        points = poisson_grid_points(grid_shape)
        rng = as_generator(seed)
        fronts: List[FrontReport] = []

        def recurse(indices: np.ndarray, level: int):
            sub = coords[indices]
            extents = sub.max(axis=0) - sub.min(axis=0) + 1
            if level >= max_levels or np.all(extents < min_size):
                return _LeafDomain(indices, matrix)
            axis = int(np.argmax(extents))
            cut = int(sub[:, axis].min() + extents[axis] // 2)
            left_indices = indices[sub[:, axis] < cut]
            right_indices = indices[sub[:, axis] > cut]
            if left_indices.size == 0 or right_indices.size == 0:
                # A degenerate cut (extent <= 2 along the split axis) leaves an
                # empty half; stop dissecting and factor the sub-grid directly.
                return _LeafDomain(indices, matrix)
            separator = indices[sub[:, axis] == cut]
            left = recurse(left_indices, level + 1)
            right = recurse(right_indices, level + 1)

            # Assemble the frontal matrix by solving against the halves.
            a_ss = matrix[np.ix_(separator, separator)].toarray()
            a_sl = matrix[np.ix_(separator, left.indices)]
            a_sr = matrix[np.ix_(separator, right.indices)]
            front = (
                a_ss
                - a_sl @ left.solve(matrix[np.ix_(left.indices, separator)].toarray())
                - a_sr @ right.solve(matrix[np.ix_(right.indices, separator)].toarray())
            )
            front_solve, report = cls._factor_front(
                front,
                points[separator],
                level,
                compress_tolerance,
                compress_min_size,
                compress_leaf_size,
                rng,
            )
            fronts.append(report)
            return _SeparatorDomain(left, right, separator, matrix, front_solve)

        root = recurse(np.arange(n, dtype=np.int64), 0)
        return cls(root, n, sorted(fronts, key=lambda f: (f.level, -f.size)))

    @staticmethod
    def _factor_front(
        front: np.ndarray,
        separator_points: np.ndarray,
        level: int,
        compress_tolerance: float | None,
        compress_min_size: int,
        compress_leaf_size: int,
        rng: np.random.Generator,
    ):
        size = front.shape[0]
        compress = (
            compress_tolerance is not None
            and size >= max(compress_min_size, 2 * compress_leaf_size)
        )
        if not compress:
            lu, piv = sla.lu_factor(front, check_finite=False)
            report = FrontReport(
                level=level,
                size=size,
                compressed=False,
                dense_bytes=int(front.nbytes),
                factor_bytes=int(lu.nbytes + piv.nbytes),
            )
            return (
                lambda b: sla.lu_solve((lu, piv), b, check_finite=False),
                report,
            )
        tree = ClusterTree.build(separator_points, leaf_size=compress_leaf_size)
        permuted = front[np.ix_(tree.perm, tree.perm)]
        result = _build_hss(
            tree,
            DenseOperator(permuted),
            DenseEntryExtractor(permuted),
            tolerance=compress_tolerance,
            sample_block_size=min(64, max(8, size // 8)),
            seed=rng,
        )
        factorization = HODLRFactorization(_hodlr_from_h2(result.matrix))
        report = FrontReport(
            level=level,
            size=size,
            compressed=True,
            dense_bytes=int(front.nbytes),
            factor_bytes=int(factorization.memory_bytes()),
            rank_range=result.rank_range,
        )
        return factorization.solve, report

    # ------------------------------------------------------------------ solve
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (exactly, or approximately with compressed fronts)."""
        b = np.asarray(b, dtype=np.float64)
        single = b.ndim == 1
        if single:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise ValueError(f"matrix has {self.n} rows, b has {b.shape[0]}")
        x = self._root.solve(b[self._root.indices])[self._scatter]
        return x[:, 0] if single else x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        return self.solve(b)

    # ------------------------------------------------------------- diagnostics
    @property
    def is_exact(self) -> bool:
        return not any(f.compressed for f in self.fronts)

    def front_report(self) -> List[FrontReport]:
        """Per-front statistics, root front first."""
        return list(self.fronts)

    def statistics(self) -> Dict[str, object]:
        dense = sum(f.dense_bytes for f in self.fronts)
        factored = sum(f.factor_bytes for f in self.fronts)
        return {
            "n": self.n,
            "num_fronts": len(self.fronts),
            "num_compressed": sum(1 for f in self.fronts if f.compressed),
            "largest_front": max((f.size for f in self.fronts), default=0),
            "front_dense_mb": dense / 2**20,
            "front_factor_mb": factored / 2**20,
            "exact": self.is_exact,
        }

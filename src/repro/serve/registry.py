"""Named-model registry: the multi-tenant state of the inference service.

A :class:`ServedModel` bundles everything one tenant's queries need — the
compressed operator, the lazily built HODLR factorization of
``K + noise I`` (first ``solve``/``predict``/``logdet`` pays it, later
requests reuse it), the cached log-determinant, and an execution lock that
serializes numerical work per model (compiled apply plans own per-plan
workspace buffers, so two threads must not apply the same operator
concurrently — concurrency across *different* models, and micro-batching
within one model, are the parallelism stories).

:class:`ModelRegistry` resolves models from four sources, in order of
explicitness: an operator instance, an artifact path
(:func:`repro.persist.load_operator`), a content key into the registry's
:class:`~repro.persist.cache.ArtifactCache`, or ``points + kernel`` (a
:func:`repro.compress` that consults the same cache first).  Loaded models
are byte-accounted in the process :class:`~repro.observe.memory.MemoryLedger`
and evicted by TTL (seconds since last use) and by an LRU byte budget, so a
long-lived server bounds its own footprint.  When the registry's
:class:`~repro.api.policy.ExecutionPolicy` carries
:class:`~repro.observe.health.HealthThresholds`, every model is
health-probed on load and the report is served by the ``health`` endpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..api.policy import ExecutionPolicy
from ..api.protocol import HierarchicalOperator
from ..kernels.base import KernelFunction
from ..observe.memory import categorize_operator_bytes, memory_ledger
from ..observe.metrics import metrics
from .api import ModelNotFoundError, ServeError

__all__ = ["ModelRegistry", "ServedModel"]


class ServedModel:
    """One registered model: operator + lazy factorization + usage state."""

    def __init__(
        self,
        name: str,
        operator: HierarchicalOperator,
        *,
        noise: float = 0.0,
        kernel: Optional[KernelFunction] = None,
        tol: float = 1e-6,
        policy: Optional[ExecutionPolicy] = None,
    ):
        self.name = name
        self.operator = operator
        self.noise = float(noise)
        self.kernel = kernel
        self.tol = float(tol)
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.loaded_at = time.monotonic()
        self.last_used = self.loaded_at
        self.requests = 0
        self.health = None
        #: Serializes numerical work on this model (see module docstring).
        self.lock = threading.Lock()
        self._factor_lock = threading.Lock()
        self._factorization = None
        self._logdet: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------ state
    @property
    def n(self) -> int:
        return int(self.operator.shape[0])

    def touch(self) -> None:
        self.last_used = time.monotonic()
        self.requests += 1

    def factorization(self):
        """The HODLR factorization of ``K + noise I`` (built on first use).

        Thread-safe double-checked build: concurrent first requests block on
        one construction instead of each paying it.
        """
        factorization = self._factorization
        if factorization is not None:
            return factorization
        with self._factor_lock:
            if self._factorization is None:
                from ..api.conversion import convert
                from ..hmatrix.hodlr import HODLRMatrix
                from ..solvers.hodlr_factor import HODLRFactorization

                operator = self.operator
                with self.policy.tracer.span(
                    "serve.factor", category="serve", model=self.name
                ):
                    hodlr = (
                        operator
                        if isinstance(operator, HODLRMatrix)
                        else convert(operator, "hodlr")
                    )
                    self._factorization = HODLRFactorization(
                        hodlr, shift=self.noise, tracer=self.policy.tracer
                    )
            return self._factorization

    @property
    def factored(self) -> bool:
        return self._factorization is not None

    def slogdet(self) -> Tuple[float, float]:
        """Cached ``(sign, log|det|)`` of ``K + noise I``."""
        if self._logdet is None:
            self._logdet = self.factorization().slogdet()
        return self._logdet

    # ----------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Bytes held by the operator plus the factorization (when built)."""
        total = int(self.operator.memory_bytes()["total"])
        factorization = self._factorization
        if factorization is not None:
            total += int(factorization.memory_bytes())
        return total

    def memory_categories(self) -> Dict[str, int]:
        """Ledger categories of this model's bytes (factor data = workspace)."""
        categories = categorize_operator_bytes(self.operator.memory_bytes())
        factorization = self._factorization
        if factorization is not None:
            categories["workspace"] = (
                categories.get("workspace", 0) + int(factorization.memory_bytes())
            )
        return categories

    def statistics(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "name": self.name,
            "n": self.n,
            "format": getattr(self.operator, "format_name", "unknown"),
            "noise": self.noise,
            "requests": self.requests,
            "factored": self.factored,
            "memory_bytes": self.memory_bytes(),
            "idle_seconds": time.monotonic() - self.last_used,
        }
        if self.health is not None:
            stats["health"] = {
                "est_relative_error": self.health.est_relative_error,
                "flagged": self.health.flagged,
            }
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ServedModel({self.name!r}, n={self.n}, noise={self.noise}, "
            f"factored={self.factored})"
        )


class ModelRegistry:
    """Thread-safe named-model store with TTL + LRU byte-budget eviction.

    Parameters
    ----------
    policy:
        Default :class:`~repro.api.policy.ExecutionPolicy` of registered
        models (tracing spans, health probes, recovery, backend).
    cache:
        Optional :class:`~repro.persist.cache.ArtifactCache` consulted by
        key- and construction-based registration.
    max_models:
        LRU cap on the number of resident models (``None`` = unbounded).
    max_bytes:
        LRU byte budget over operator + factorization bytes (``None`` =
        unbounded).  The most recently used models survive.
    ttl_seconds:
        Idle time after which a model is evicted (checked on every access
        and registration; ``None`` = no expiry).
    """

    def __init__(
        self,
        *,
        policy: Optional[ExecutionPolicy] = None,
        cache=None,
        max_models: Optional[int] = None,
        max_bytes: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
    ):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.cache = cache
        self.max_models = None if max_models is None else int(max_models)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.ttl_seconds = None if ttl_seconds is None else float(ttl_seconds)
        self.evictions = 0
        self._models: Dict[str, ServedModel] = {}
        self._mutex = threading.RLock()

    # -------------------------------------------------------------- resolution
    def register(
        self,
        name: str,
        operator: Optional[HierarchicalOperator] = None,
        *,
        path=None,
        key: Optional[str] = None,
        points: Optional[np.ndarray] = None,
        kernel: Optional[KernelFunction] = None,
        tol: float = 1e-6,
        noise: float = 0.0,
        format: str = "hss",
        seed=0,
        policy: Optional[ExecutionPolicy] = None,
        warm: bool = False,
        **compress_kwargs: object,
    ) -> ServedModel:
        """Register a model under ``name`` and return its record.

        Exactly one operator source must be provided: an ``operator``
        instance, an artifact ``path``, a cache ``key`` (requires the
        registry's :class:`~repro.persist.cache.ArtifactCache`), or
        ``points`` + ``kernel`` (compressed through the cache when one is
        configured).  ``warm=True`` builds the factorization (and caches the
        log-determinant) eagerly so the first query does not pay it.
        Re-registering a name replaces the old model (and releases its
        ledger bytes).
        """
        policy = policy if policy is not None else self.policy
        sources = sum(
            source is not None for source in (operator, path, key, points)
        )
        if sources != 1:
            raise ServeError(
                "register() needs exactly one operator source: operator=, "
                f"path=, key=, or points=+kernel= (got {sources})"
            )
        if path is not None:
            from ..persist import load_operator

            operator = load_operator(path)
        elif key is not None:
            if self.cache is None:
                raise ServeError(
                    "key-based registration requires a registry ArtifactCache"
                )
            operator = self.cache.get(key, tracer=policy.tracer)
            if operator is None:
                raise ModelNotFoundError(
                    f"artifact cache has no entry for key {key!r}"
                )
        elif points is not None:
            if kernel is None:
                raise ServeError("points-based registration requires kernel=")
            from ..api.facade import compress

            operator = compress(
                points, kernel, format=format, tol=tol, seed=seed,
                policy=policy, cache=self.cache, **compress_kwargs,
            )
        assert operator is not None

        model = ServedModel(
            name, operator, noise=noise, kernel=kernel, tol=tol, policy=policy
        )
        if policy.health is not None and kernel is not None:
            from ..observe.health import check_operator_health

            model.health = check_operator_health(
                operator, kernel, tol, thresholds=policy.health,
                tracer=policy.tracer, source="loaded",
            )
        if warm:
            model.slogdet()

        with self._mutex:
            previous = self._models.pop(name, None)
            if previous is not None:
                memory_ledger().release(f"serve.model:{name}")
            self._models[name] = model
            self._account(model)
            self._sweep_locked()
        metrics().counter("serve.models.registered").inc()
        return model

    # ------------------------------------------------------------------ access
    def get(self, name: str) -> ServedModel:
        """The model registered under ``name`` (refreshes its LRU/TTL clock)."""
        with self._mutex:
            self._sweep_locked()
            model = self._models.get(name)
            if model is None:
                raise ModelNotFoundError(
                    f"no model named {name!r} is registered "
                    f"(available: {sorted(self._models)})"
                )
            model.touch()
            return model

    def __contains__(self, name: str) -> bool:
        with self._mutex:
            return name in self._models

    def names(self) -> list:
        with self._mutex:
            return sorted(self._models)

    def evict(self, name: str) -> bool:
        """Drop ``name`` (releases its ledger bytes); was it resident?"""
        with self._mutex:
            model = self._models.pop(name, None)
            if model is None:
                return False
            self._drop_accounting(name)
            self.evictions += 1
            self._publish_locked()
        metrics().counter("serve.models.evicted").inc()
        return True

    def clear(self) -> None:
        with self._mutex:
            for name in list(self._models):
                self._models.pop(name)
                self._drop_accounting(name)
            self._publish_locked()

    # ---------------------------------------------------------------- eviction
    def _sweep_locked(self) -> None:
        """TTL expiry, then LRU eviction down to the model/byte budgets."""
        now = time.monotonic()
        if self.ttl_seconds is not None:
            expired = [
                name
                for name, model in self._models.items()
                if now - model.last_used > self.ttl_seconds
            ]
            for name in expired:
                self._models.pop(name)
                self._drop_accounting(name)
                self.evictions += 1
                metrics().counter("serve.models.evicted").inc()

        def lru_order():
            return sorted(self._models, key=lambda n: self._models[n].last_used)

        if self.max_models is not None:
            for name in lru_order()[: max(0, len(self._models) - self.max_models)]:
                self._models.pop(name)
                self._drop_accounting(name)
                self.evictions += 1
                metrics().counter("serve.models.evicted").inc()
        if self.max_bytes is not None:
            total = sum(m.memory_bytes() for m in self._models.values())
            for name in lru_order():
                if total <= self.max_bytes or len(self._models) <= 1:
                    break
                total -= self._models[name].memory_bytes()
                self._models.pop(name)
                self._drop_accounting(name)
                self.evictions += 1
                metrics().counter("serve.models.evicted").inc()
        self._publish_locked()

    def _account(self, model: ServedModel) -> None:
        memory_ledger().account(
            f"serve.model:{model.name}", model.memory_categories()
        )

    def _drop_accounting(self, name: str) -> None:
        memory_ledger().release(f"serve.model:{name}")

    def _publish_locked(self) -> None:
        registry = metrics()
        registry.gauge("serve.models.loaded").set(len(self._models))
        registry.gauge("serve.models.bytes").set(
            sum(m.memory_bytes() for m in self._models.values())
        )

    def refresh_accounting(self, model: ServedModel) -> None:
        """Re-account a model whose byte footprint changed (factorization)."""
        with self._mutex:
            if self._models.get(model.name) is model:
                self._account(model)
                self._publish_locked()

    # --------------------------------------------------------------- reporting
    def statistics(self) -> Dict[str, object]:
        with self._mutex:
            return {
                "models": {
                    name: model.statistics()
                    for name, model in sorted(self._models.items())
                },
                "count": len(self._models),
                "bytes": sum(m.memory_bytes() for m in self._models.values()),
                "evictions": self.evictions,
                "ttl_seconds": self.ttl_seconds,
                "max_models": self.max_models,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ModelRegistry(models={self.names()}, evictions={self.evictions})"

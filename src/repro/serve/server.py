"""The asyncio inference service core: dispatch, telemetry, resilience.

:class:`InferenceServer` is framework-free — the whole service is the typed
``async`` API (:meth:`~InferenceServer.handle` plus one coroutine per
endpoint), so tests and embedders drive it in-process without a socket; the
thin HTTP adapter (:mod:`repro.serve.http`) is an optional layer on top.

Every request runs under a ``serve.request`` tracer span and reports into the
process metrics registry: ``serve.requests.<endpoint>`` /
``serve.errors.<endpoint>`` counters and a ``serve.<endpoint>.latency_ms``
percentile histogram (p50/p95/p99 — scraped for free by the OpenMetrics
``metrics`` endpoint).  Expensive linear algebra micro-batches through the
:class:`~repro.serve.batching.MicroBatcher`; ``method="cg"`` solves inherit
the policy's :class:`~repro.resilience.RecoveryPolicy` on non-convergence
(strict → raise, warn → flagged result, recover → escalation ladder).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

import numpy as np

from ..api.policy import ExecutionPolicy
from ..observe.metrics import metrics
from ..observe.openmetrics import render_openmetrics
from .api import (
    HealthRequest,
    HealthResponse,
    LogdetRequest,
    LogdetResponse,
    MatvecRequest,
    MatvecResponse,
    MetricsRequest,
    MetricsResponse,
    PredictRequest,
    PredictResponse,
    RequestValidationError,
    ServeRequest,
    ServeResponse,
    SolveRequest,
    SolveResponse,
)
from .batching import MicroBatcher
from .registry import ModelRegistry, ServedModel

__all__ = ["InferenceServer"]


class InferenceServer:
    """Multi-tenant async GP/solve inference service.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` to serve (default: a
        fresh registry under ``policy``).
    policy:
        :class:`~repro.api.policy.ExecutionPolicy` of the service — tracer
        spans, health thresholds, recovery policy and backend selection all
        ride on it (defaults to the registry's policy).
    batching, max_batch, max_wait_ms:
        Micro-batching knobs (see :class:`~repro.serve.batching.MicroBatcher`);
        ``batching=False`` serves every request individually.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        policy: Optional[ExecutionPolicy] = None,
        batching: bool = True,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
    ):
        if registry is None:
            registry = ModelRegistry(policy=policy)
        self.registry = registry
        self.policy = policy if policy is not None else registry.policy
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            enabled=batching,
            tracer=self.policy.tracer,
        )
        self.started_at = time.monotonic()
        self._dispatch = {
            MatvecRequest: self.matvec,
            SolveRequest: self.solve,
            PredictRequest: self.predict,
            LogdetRequest: self.logdet,
            HealthRequest: self.health,
            MetricsRequest: self.metrics,
        }

    # ---------------------------------------------------------------- registry
    def register(self, name: str, *args, **kwargs) -> ServedModel:
        """Register a model (see :meth:`ModelRegistry.register`)."""
        return self.registry.register(name, *args, **kwargs)

    # ---------------------------------------------------------------- dispatch
    async def handle(self, request: ServeRequest) -> ServeResponse:
        """Dispatch a typed request to its endpoint coroutine."""
        handler = self._dispatch.get(type(request))
        if handler is None:
            raise RequestValidationError(
                f"unhandled request type {type(request).__name__}"
            )
        return await handler(request)

    def _start(self, request: ServeRequest):
        registry = metrics()
        registry.counter("serve.requests").inc()
        registry.counter(f"serve.requests.{request.endpoint}").inc()
        return time.perf_counter()

    def _finish(
        self, request: ServeRequest, response: ServeResponse, start: float
    ) -> ServeResponse:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        response.model = request.model
        response.request_id = request.request_id
        response.latency_ms = elapsed_ms
        metrics().histogram(f"serve.{request.endpoint}.latency_ms").observe(
            elapsed_ms
        )
        return response

    def _fail(self, request: ServeRequest, exc: Exception) -> Exception:
        registry = metrics()
        registry.counter("serve.errors").inc()
        registry.counter(f"serve.errors.{request.endpoint}").inc()
        return exc

    async def _serve(self, request: ServeRequest, body) -> ServeResponse:
        """Span + metrics + error accounting around one endpoint body."""
        start = self._start(request)
        with self.policy.tracer.span(
            "serve.request", category="serve",
            endpoint=request.endpoint, model=request.model,
            request_id=request.request_id,
        ):
            try:
                response = await body()
            except Exception as exc:
                self._fail(request, exc)
                raise
        return self._finish(request, response, start)

    # --------------------------------------------------------------- endpoints
    async def matvec(self, request: MatvecRequest) -> MatvecResponse:
        """``y = K x``, micro-batched into one ``matmat`` launch."""

        async def body() -> MatvecResponse:
            model = self.registry.get(request.model)
            y, batch_size = await self.batcher.submit(model, "matvec", request.x)
            return MatvecResponse(
                y=y, batched=batch_size > 1, batch_size=batch_size
            )

        return await self._serve(request, body)

    async def predict(self, request: PredictRequest) -> PredictResponse:
        """Posterior mean ``K (K + noise I)^{-1} y`` at the training inputs."""

        async def body() -> PredictResponse:
            model = self.registry.get(request.model)
            mean, batch_size = await self.batcher.submit(
                model, "predict", request.y
            )
            self.registry.refresh_accounting(model)  # lazy factorization bytes
            return PredictResponse(
                mean=mean, batched=batch_size > 1, batch_size=batch_size
            )

        return await self._serve(request, body)

    async def solve(self, request: SolveRequest) -> SolveResponse:
        """``(K + noise I) x = b`` — direct (batched) or CG (guarded)."""

        async def body() -> SolveResponse:
            model = self.registry.get(request.model)
            if request.method == "direct":
                x, batch_size = await self.batcher.submit(model, "solve", request.b)
                self.registry.refresh_accounting(model)
                return SolveResponse(
                    x=x, method="direct", converged=True,
                    batched=batch_size > 1, batch_size=batch_size,
                )
            if request.method != "cg":
                raise RequestValidationError(
                    f"solve method must be 'direct' or 'cg', not "
                    f"{request.method!r}"
                )
            result = await self._solve_cg(model, request)
            self.registry.refresh_accounting(model)
            return SolveResponse(
                x=result.x, method=result.method, converged=result.converged,
                iterations=result.iterations,
                final_residual=result.final_residual,
            )

        return await self._serve(request, body)

    async def _solve_cg(self, model: ServedModel, request: SolveRequest):
        """Factorization-preconditioned CG with the policy's recovery ladder."""
        b = np.asarray(request.b, dtype=np.float64)
        if b.ndim != 1 or b.shape[0] != model.n:
            raise RequestValidationError(
                f"cg solves take a single RHS vector of length {model.n}, "
                f"got shape {b.shape}"
            )
        if not np.isfinite(b).all():
            raise RequestValidationError(
                "payload contains non-finite values (NaN/Inf)"
            )

        def run():
            from ..hmatrix.linear_operator import as_linear_operator
            from ..solvers import krylov

            with model.lock:
                factorization = model.factorization()
                operator = as_linear_operator(model.operator, shift=model.noise)
                maxiter = request.maxiter
                if self.policy.faults is not None:
                    maxiter = self.policy.faults.stall_maxiter(maxiter)
                return krylov.cg(
                    operator, b, tol=request.tol, maxiter=maxiter,
                    M=factorization, tracer=self.policy.tracer,
                    health=self.policy.health,
                )

        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self.batcher._executor, run)
        if result.converged or self.policy.recovery is None:
            return result
        return await loop.run_in_executor(
            self.batcher._executor,
            lambda: self._recover_solve(model, request, result),
        )

    def _recover_solve(self, model: ServedModel, request: SolveRequest, result):
        """Map the recovery policy onto a non-converged CG solve."""
        from ..resilience.errors import SolveDidNotConvergeError
        from ..resilience.policy import resilience_adapter
        from ..solvers.ladder import escalation_ladder

        recovery = self.policy.recovery
        if recovery.mode == "strict":
            raise SolveDidNotConvergeError(
                f"{result.method} did not converge in {result.iterations} "
                f"iterations (final residual {result.final_residual:.3e} > "
                f"tol {request.tol:.3e})",
                result=result,
            )
        if recovery.mode == "warn":
            resilience_adapter().warn(
                "solve-not-converged", method=result.method,
                iterations=result.iterations,
                final_residual=result.final_residual, tol=request.tol,
                model=model.name,
            )
            return result
        # recover: escalate through the rungs the preconditioned CG skipped.
        rungs = tuple(r for r in recovery.ladder if r not in ("cg", "pcg"))
        with model.lock:
            escalated = escalation_ladder(
                model.operator, np.asarray(request.b, dtype=np.float64),
                tol=request.tol, shift=model.noise,
                factorization=model.factorization(), recovery=recovery,
                rungs=rungs, x0=result.x, tracer=self.policy.tracer,
                health=self.policy.health,
            )
        escalated.extra["escalated_from"] = result.method
        return escalated

    async def logdet(self, request: LogdetRequest) -> LogdetResponse:
        """Cached ``log|det(K + noise I)|`` of the model."""

        async def body() -> LogdetResponse:
            model = self.registry.get(request.model)
            loop = asyncio.get_running_loop()

            def run():
                with model.lock:
                    return model.slogdet()

            sign, logabs = await loop.run_in_executor(
                self.batcher._executor, run
            )
            self.registry.refresh_accounting(model)
            return LogdetResponse(logdet=logabs, sign=sign)

        return await self._serve(request, body)

    async def health(self, request: Optional[HealthRequest] = None) -> HealthResponse:
        """Service liveness plus per-model statistics/health reports."""
        request = request if request is not None else HealthRequest()

        async def body() -> HealthResponse:
            stats = self.registry.statistics()
            models: Dict[str, dict] = stats["models"]  # type: ignore[assignment]
            if request.model:
                if request.model not in models:
                    from .api import ModelNotFoundError

                    raise ModelNotFoundError(
                        f"no model named {request.model!r} is registered"
                    )
                models = {request.model: models[request.model]}
            flagged = any(
                model.get("health", {}).get("flagged", False)
                for model in models.values()
            )
            return HealthResponse(
                status="degraded" if flagged else "ok",
                uptime_seconds=time.monotonic() - self.started_at,
                models=models,
            )

        return await self._serve(request, body)

    async def metrics(self, request: Optional[MetricsRequest] = None) -> MetricsResponse:
        """The OpenMetrics exposition of the process metrics registry."""
        request = request if request is not None else MetricsRequest()

        async def body() -> MetricsResponse:
            return MetricsResponse(text=render_openmetrics())

        return await self._serve(request, body)

    # --------------------------------------------------------------- lifecycle
    async def aclose(self) -> None:
        """Flush pending batches and shut the worker pool down."""
        await self.batcher.drain()
        self.batcher.close()

    def statistics(self) -> Dict[str, object]:
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "batching": self.batcher.statistics(),
            "registry": self.registry.statistics(),
        }

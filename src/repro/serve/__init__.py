"""repro.serve — multi-tenant async inference service with matmat micro-batching.

The production workload the library has been building toward: a long-lived
``asyncio`` service answering GP posterior-mean, solve, matvec and
log-determinant queries over named models resolved from persistent operator
artifacts.  Concurrent single-vector queries against the same operator are
coalesced by the :class:`MicroBatcher` into one block-RHS ``matmat`` /
block-solve launch — the batching opportunity the compiled apply plans were
built for — and every request inherits the
:class:`~repro.api.policy.ExecutionPolicy` stack: ``serve.request`` /
``serve.batch`` tracer spans, p50/p95/p99 latency histograms exposed through
the OpenMetrics ``metrics`` endpoint, health probes on model load, and the
resilience recovery ladder on non-converged solves.

Quick use (in-process, no socket)::

    import asyncio, numpy as np, repro
    from repro.serve import InferenceServer, SolveRequest

    server = InferenceServer()
    server.register("demo", points=points, kernel=repro.ExponentialKernel(0.2),
                    tol=1e-6, noise=1e-2)

    async def main():
        response = await server.handle(SolveRequest(model="demo", b=b))
        return response.x

    x = asyncio.run(main())

or over HTTP (optional thin adapter, still dependency-free)::

    from repro.serve import serve_http
    http = await serve_http(server, port=8080)   # POST /v1/solve, GET /metrics
"""

from .api import (
    ENDPOINTS,
    HealthRequest,
    HealthResponse,
    LogdetRequest,
    LogdetResponse,
    MatvecRequest,
    MatvecResponse,
    MetricsRequest,
    MetricsResponse,
    ModelNotFoundError,
    PredictRequest,
    PredictResponse,
    RequestValidationError,
    ServeError,
    ServeRequest,
    ServeResponse,
    SolveRequest,
    SolveResponse,
    request_from_wire,
    response_to_wire,
)
from .batching import BATCH_KINDS, MicroBatcher
from .http import HttpAdapter, serve_http
from .registry import ModelRegistry, ServedModel
from .server import InferenceServer

__all__ = [
    "BATCH_KINDS",
    "ENDPOINTS",
    "HealthRequest",
    "HealthResponse",
    "HttpAdapter",
    "InferenceServer",
    "LogdetRequest",
    "LogdetResponse",
    "MatvecRequest",
    "MatvecResponse",
    "MetricsRequest",
    "MetricsResponse",
    "MicroBatcher",
    "ModelNotFoundError",
    "ModelRegistry",
    "PredictRequest",
    "PredictResponse",
    "RequestValidationError",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServedModel",
    "SolveRequest",
    "SolveResponse",
    "request_from_wire",
    "response_to_wire",
    "serve_http",
]

"""Typed request/response surface of the ``repro.serve`` inference service.

The service speaks five endpoints, each a pair of frozen dataclasses:

===========  ============================  ==============================
endpoint     request                       response
===========  ============================  ==============================
``matvec``   :class:`MatvecRequest`        :class:`MatvecResponse`
``solve``    :class:`SolveRequest`         :class:`SolveResponse`
``predict``  :class:`PredictRequest`       :class:`PredictResponse`
``logdet``   :class:`LogdetRequest`        :class:`LogdetResponse`
``health``   :class:`HealthRequest`        :class:`HealthResponse`
``metrics``  :class:`MetricsRequest`       :class:`MetricsResponse`
===========  ============================  ==============================

Requests carry NumPy payloads directly for the in-process API; the
:func:`request_from_wire` / :func:`response_to_wire` codecs translate to the
JSON wire format of the thin HTTP adapter (arrays as nested lists), so the
numerical core never depends on a transport.

``predict`` is GP smoothing at the model's training inputs: given observations
``y``, it returns the posterior mean ``K (K + noise I)^{-1} y`` under the
model's registered noise level — a block solve followed by a block matvec,
both of which micro-batch across concurrent callers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ENDPOINTS",
    "HealthRequest",
    "HealthResponse",
    "LogdetRequest",
    "LogdetResponse",
    "MatvecRequest",
    "MatvecResponse",
    "MetricsRequest",
    "MetricsResponse",
    "ModelNotFoundError",
    "PredictRequest",
    "PredictResponse",
    "RequestValidationError",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "SolveRequest",
    "SolveResponse",
    "request_from_wire",
    "response_to_wire",
]

#: Endpoint names the server dispatches on.
ENDPOINTS: Tuple[str, ...] = (
    "matvec", "solve", "predict", "logdet", "health", "metrics"
)

_REQUEST_IDS = itertools.count(1)


def _next_request_id() -> str:
    return f"req-{next(_REQUEST_IDS)}"


# --------------------------------------------------------------------- errors
class ServeError(Exception):
    """Base class of every serving-layer error."""


class ModelNotFoundError(ServeError, KeyError):
    """The named model is not registered (or its TTL expired)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return Exception.__str__(self)


class RequestValidationError(ServeError, ValueError):
    """The request payload cannot be executed (shape, dtype, non-finite)."""


# ------------------------------------------------------------------- requests
@dataclass(frozen=True, eq=False)
class ServeRequest:
    """Base request: the target model plus a correlation id."""

    model: str = ""
    request_id: str = field(default_factory=_next_request_id)

    endpoint = "base"


@dataclass(frozen=True, eq=False)
class MatvecRequest(ServeRequest):
    """Forward apply ``y = K x`` (``x`` a vector ``(n,)`` or block ``(n, k)``)."""

    x: np.ndarray = None  # type: ignore[assignment]

    endpoint = "matvec"


@dataclass(frozen=True, eq=False)
class SolveRequest(ServeRequest):
    """Solve ``(K + noise I) x = b`` under the model's registered noise.

    ``method="direct"`` (default) routes through the model's HODLR
    factorization and micro-batches with concurrent callers;
    ``method="cg"`` runs a factorization-preconditioned CG to ``tol`` —
    unbatched, but guarded by the policy's recovery ladder when the
    iteration does not converge.
    """

    b: np.ndarray = None  # type: ignore[assignment]
    method: str = "direct"
    tol: float = 1e-10
    maxiter: Optional[int] = None

    endpoint = "solve"


@dataclass(frozen=True, eq=False)
class PredictRequest(ServeRequest):
    """GP posterior mean at the training inputs given observations ``y``."""

    y: np.ndarray = None  # type: ignore[assignment]

    endpoint = "predict"


@dataclass(frozen=True, eq=False)
class LogdetRequest(ServeRequest):
    """``log|det(K + noise I)|`` of the model (cached after the first call)."""

    endpoint = "logdet"


@dataclass(frozen=True, eq=False)
class HealthRequest(ServeRequest):
    """Service liveness + per-model health (``model=""`` means all models)."""

    endpoint = "health"


@dataclass(frozen=True, eq=False)
class MetricsRequest(ServeRequest):
    """The OpenMetrics exposition of the process metrics registry."""

    endpoint = "metrics"


# ------------------------------------------------------------------ responses
@dataclass(eq=False)
class ServeResponse:
    """Base response: correlation id plus serving telemetry.

    ``batched`` is ``True`` when the answer came out of a coalesced
    micro-batch launch; ``batch_size`` is the number of requests that shared
    that launch (1 for a single-request fallback).
    """

    model: str = ""
    request_id: str = ""
    latency_ms: float = 0.0
    batched: bool = False
    batch_size: int = 1

    endpoint = "base"


@dataclass(eq=False)
class MatvecResponse(ServeResponse):
    y: np.ndarray = None  # type: ignore[assignment]

    endpoint = "matvec"


@dataclass(eq=False)
class SolveResponse(ServeResponse):
    x: np.ndarray = None  # type: ignore[assignment]
    method: str = "direct"
    converged: bool = True
    iterations: int = 0
    final_residual: float = 0.0

    endpoint = "solve"


@dataclass(eq=False)
class PredictResponse(ServeResponse):
    mean: np.ndarray = None  # type: ignore[assignment]

    endpoint = "predict"


@dataclass(eq=False)
class LogdetResponse(ServeResponse):
    logdet: float = 0.0
    sign: float = 1.0

    endpoint = "logdet"


@dataclass(eq=False)
class HealthResponse(ServeResponse):
    status: str = "ok"
    uptime_seconds: float = 0.0
    models: Dict[str, dict] = field(default_factory=dict)

    endpoint = "health"


@dataclass(eq=False)
class MetricsResponse(ServeResponse):
    text: str = ""
    content_type: str = "application/openmetrics-text; version=1.0.0; charset=utf-8"

    endpoint = "metrics"


# ----------------------------------------------------------------- wire codec
def _decode_array(value: object, name: str) -> np.ndarray:
    try:
        array = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise RequestValidationError(
            f"field {name!r} is not a numeric array: {exc}"
        ) from exc
    if array.ndim not in (1, 2):
        raise RequestValidationError(
            f"field {name!r} must be a vector or a 2-D block, got shape "
            f"{array.shape}"
        )
    return array


_WIRE_REQUESTS = {
    "matvec": (MatvecRequest, "x"),
    "solve": (SolveRequest, "b"),
    "predict": (PredictRequest, "y"),
    "logdet": (LogdetRequest, None),
    "health": (HealthRequest, None),
    "metrics": (MetricsRequest, None),
}


def request_from_wire(endpoint: str, payload: dict) -> ServeRequest:
    """Build the typed request of ``endpoint`` from a decoded JSON body."""
    if endpoint not in _WIRE_REQUESTS:
        raise RequestValidationError(
            f"unknown endpoint {endpoint!r}; available: {list(ENDPOINTS)}"
        )
    if not isinstance(payload, dict):
        raise RequestValidationError("request body must be a JSON object")
    cls, array_field = _WIRE_REQUESTS[endpoint]
    kwargs: dict = {}
    model = payload.get("model", "")
    if not isinstance(model, str):
        raise RequestValidationError("field 'model' must be a string")
    kwargs["model"] = model
    if isinstance(payload.get("request_id"), str):
        kwargs["request_id"] = payload["request_id"]
    if array_field is not None:
        if array_field not in payload:
            raise RequestValidationError(
                f"endpoint {endpoint!r} requires field {array_field!r}"
            )
        kwargs[array_field] = _decode_array(payload[array_field], array_field)
    if endpoint == "solve":
        method = payload.get("method", "direct")
        if method not in ("direct", "cg"):
            raise RequestValidationError(
                f"solve method must be 'direct' or 'cg', not {method!r}"
            )
        kwargs["method"] = method
        if "tol" in payload:
            kwargs["tol"] = float(payload["tol"])
        if payload.get("maxiter") is not None:
            kwargs["maxiter"] = int(payload["maxiter"])
    return cls(**kwargs)


def response_to_wire(response: ServeResponse) -> dict:
    """JSON-serializable dict of ``response`` (arrays become nested lists)."""
    wire: dict = {
        "endpoint": response.endpoint,
        "model": response.model,
        "request_id": response.request_id,
        "latency_ms": response.latency_ms,
        "batched": response.batched,
        "batch_size": response.batch_size,
    }
    for name in ("y", "x", "mean"):
        value = getattr(response, name, None)
        if isinstance(value, np.ndarray):
            wire[name] = value.tolist()
    for name in ("method", "converged", "iterations", "final_residual",
                 "logdet", "sign", "status", "uptime_seconds", "models",
                 "text", "content_type"):
        if hasattr(response, name):
            wire[name] = getattr(response, name)
    return wire


Request = Union[
    MatvecRequest, SolveRequest, PredictRequest, LogdetRequest,
    HealthRequest, MetricsRequest,
]

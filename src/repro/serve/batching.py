"""Micro-batching: coalesce concurrent requests into one ``matmat`` launch.

The batching win this module exploits is already wired into the library: the
compiled apply plan routes a block RHS through a single batched-GEMM launch
(``matmat``), and the HODLR factorization solves a block RHS with level-3
BLAS — so ``k`` concurrent single-vector queries against the *same* operator
cost one launch sequence instead of ``k``.

:class:`MicroBatcher` keeps one admission queue per ``(model, kind)``.  The
first request of a window arms a flush timer (``max_wait_ms``); the queue
flushes early when ``max_batch`` columns accumulate.  A flush column-stacks
every pending payload (vectors and ``(n, k)`` blocks coalesce side by side —
each caller gets exactly its own columns back, in its original shape),
executes the block operation once on a worker thread, and scatters the result
columns to the per-request futures.

Isolation guarantees:

* payloads are shape-validated at admission (a bad shape fails fast, never
  enters a batch);
* non-finite payload columns are screened at flush time — their requests fail
  with :class:`~repro.serve.api.RequestValidationError` while their
  batchmates execute normally;
* if the coalesced launch itself raises, every member is retried
  individually (``serve.batch.fallbacks``), so one poisoned request cannot
  take its batchmates down with it.

With ``enabled=False`` (or ``max_batch=1``) every request executes alone on
the worker pool — the baseline the acceptance benchmark compares against.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..observe.metrics import metrics
from ..observe.tracer import NOOP_TRACER
from .api import RequestValidationError
from .registry import ServedModel

__all__ = ["MicroBatcher", "BATCH_KINDS"]

#: Block operations the batcher can coalesce.
BATCH_KINDS = ("matvec", "solve", "predict")


class _Pending:
    """One admitted request: a normalized ``(n, k)`` payload plus its future."""

    __slots__ = ("payload", "single", "future", "enqueued")

    def __init__(self, payload: np.ndarray, single: bool, future: asyncio.Future):
        self.payload = payload
        self.single = single
        self.future = future
        self.enqueued = time.perf_counter()


class _Queue:
    """Admission queue of one ``(model, kind)`` pair."""

    __slots__ = ("model", "kind", "items", "timer")

    def __init__(self, model: ServedModel, kind: str):
        self.model = model
        self.kind = kind
        self.items: List[_Pending] = []
        self.timer: Optional[asyncio.Task] = None

    @property
    def columns(self) -> int:
        return sum(item.payload.shape[1] for item in self.items)

    def drain(self) -> List[_Pending]:
        items, self.items = self.items, []
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        return items


def _execute_kind(model: ServedModel, kind: str, block: np.ndarray) -> np.ndarray:
    """The synchronous block operation of ``kind`` (runs on a worker thread).

    The model's execution lock serializes numerical work per model: compiled
    apply plans own shared workspace buffers, so concurrent applies of one
    operator would race.
    """
    with model.lock:
        if kind == "matvec":
            return model.operator.matmat(block)
        if kind == "solve":
            return model.factorization().solve(block)
        if kind == "predict":
            return model.operator.matmat(model.factorization().solve(block))
        raise ValueError(f"unknown batch kind {kind!r}; use one of {BATCH_KINDS}")


class MicroBatcher:
    """Per-model admission queues coalescing concurrent block operations.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many *columns* are pending (default 64 — one
        wide GEMM per window at the acceptance benchmark's client count).
    max_wait_ms:
        Longest time the first request of a window waits for batchmates
        before the queue flushes anyway (default 2 ms).  The added latency
        ceiling of batching.
    enabled:
        ``False`` turns coalescing off — every request runs alone on the
        worker pool (the comparison baseline; correctness is identical).
    executor:
        Worker pool for the numerical work (default: a private
        2-worker :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy/BLAS
        release the GIL, so admission stays responsive while a batch runs).
    tracer:
        Span tracer for ``serve.batch`` spans (default: no tracing).
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        enabled: bool = True,
        executor: Optional[concurrent.futures.Executor] = None,
        tracer=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.enabled = bool(enabled) and self.max_batch > 1
        self._own_executor = executor is None
        self._executor = executor or concurrent.futures.ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve"
        )
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._queues: Dict[Tuple[str, str], _Queue] = {}
        self.launches = 0
        self.coalesced_requests = 0

    # ------------------------------------------------------------------ submit
    async def submit(
        self, model: ServedModel, kind: str, payload: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Execute ``kind`` for ``payload``, coalescing with concurrent peers.

        Returns ``(result, batch_size)`` where ``batch_size`` is the number
        of requests that shared the launch (1 when the request ran alone).
        The result has the payload's shape (vector in, vector out).
        """
        if kind not in BATCH_KINDS:
            raise ValueError(f"unknown batch kind {kind!r}; use one of {BATCH_KINDS}")
        block, single = self._validate(model, payload)
        loop = asyncio.get_running_loop()
        if not self.enabled:
            if not np.isfinite(block).all():
                raise RequestValidationError(
                    "payload contains non-finite values (NaN/Inf)"
                )
            metrics().histogram("serve.batch.requests").observe(1)
            self.launches += 1
            self.coalesced_requests += 1
            result = await loop.run_in_executor(
                self._executor, _execute_kind, model, kind, block
            )
            return (result[:, 0] if single else result), 1

        future: asyncio.Future = loop.create_future()
        pending = _Pending(block, single, future)
        queue = self._queues.get((model.name, kind))
        if queue is None or queue.model is not model:
            # New key, or the registry replaced the model under this name:
            # never coalesce payloads across two different operators.
            queue = self._queues[(model.name, kind)] = _Queue(model, kind)
        queue.items.append(pending)
        if queue.columns >= self.max_batch:
            await self._flush(queue)
        elif queue.timer is None:
            queue.timer = loop.create_task(self._flush_later(queue))
        result, batch_size = await future
        return (result[:, 0] if single else result), batch_size

    def _validate(
        self, model: ServedModel, payload: np.ndarray
    ) -> Tuple[np.ndarray, bool]:
        payload = np.asarray(payload)
        if payload.dtype.kind not in "fiu":
            raise RequestValidationError(
                f"payload dtype {payload.dtype} is not real-numeric"
            )
        payload = np.asarray(payload, dtype=np.float64)
        single = payload.ndim == 1
        if single:
            payload = payload[:, None]
        if payload.ndim != 2 or payload.shape[0] != model.n:
            raise RequestValidationError(
                f"payload shape {payload.shape if not single else (payload.shape[0],)} "
                f"does not match model {model.name!r} with n={model.n}"
            )
        if payload.shape[1] == 0:
            raise RequestValidationError("payload must have at least one column")
        return np.ascontiguousarray(payload), single

    # ------------------------------------------------------------------- flush
    async def _flush_later(self, queue: _Queue) -> None:
        try:
            await asyncio.sleep(self.max_wait)
        except asyncio.CancelledError:
            return
        queue.timer = None
        await self._flush(queue)

    async def _flush(self, queue: _Queue) -> None:
        items = queue.drain()
        if not items:
            return
        loop = asyncio.get_running_loop()
        registry = metrics()

        # Screen non-finite payloads out of the batch: their futures fail,
        # their batchmates still coalesce.
        good: List[_Pending] = []
        for item in items:
            if not np.isfinite(item.payload).all():
                item.future.set_exception(
                    RequestValidationError(
                        "payload contains non-finite values (NaN/Inf)"
                    )
                )
            else:
                good.append(item)
        if not good:
            return

        batch_requests = len(good)
        block = (
            good[0].payload
            if batch_requests == 1
            else np.concatenate([item.payload for item in good], axis=1)
        )
        registry.histogram("serve.batch.requests").observe(batch_requests)
        registry.histogram("serve.batch.columns").observe(block.shape[1])
        if batch_requests > 1:
            oldest = min(item.enqueued for item in good)
            registry.histogram("serve.batch.wait_ms").observe(
                (time.perf_counter() - oldest) * 1000.0
            )
        self.launches += 1
        self.coalesced_requests += batch_requests
        registry.counter("serve.batch.launches").inc()

        with self._tracer.span(
            "serve.batch", category="serve", model=queue.model.name,
            kind=queue.kind, requests=batch_requests, columns=block.shape[1],
        ):
            try:
                result = await loop.run_in_executor(
                    self._executor, _execute_kind, queue.model, queue.kind, block
                )
            except Exception:
                # The coalesced launch failed: isolate by retrying each
                # member alone so one poisoned request cannot fail the rest.
                registry.counter("serve.batch.fallbacks").inc()
                for item in good:
                    try:
                        value = await loop.run_in_executor(
                            self._executor, _execute_kind,
                            queue.model, queue.kind, item.payload,
                        )
                    except Exception as exc:
                        if not item.future.done():
                            item.future.set_exception(exc)
                    else:
                        if not item.future.done():
                            item.future.set_result((value, 1))
                return

        offset = 0
        for item in good:
            width = item.payload.shape[1]
            if not item.future.done():
                item.future.set_result(
                    (result[:, offset:offset + width], batch_requests)
                )
            offset += width

    # --------------------------------------------------------------- lifecycle
    async def drain(self) -> None:
        """Flush every pending queue (used at shutdown)."""
        for queue in list(self._queues.values()):
            await self._flush(queue)

    def close(self) -> None:
        if self._own_executor:
            self._executor.shutdown(wait=True)

    def statistics(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1000.0,
            "launches": self.launches,
            "coalesced_requests": self.coalesced_requests,
            "mean_batch_size": (
                self.coalesced_requests / self.launches if self.launches else 0.0
            ),
        }

"""Thin dependency-free HTTP/1.1 adapter over the asyncio service core.

The numerical service is the in-process async API of
:class:`~repro.serve.server.InferenceServer`; this module is the optional
network skin — a minimal HTTP/1.1 server on raw ``asyncio`` streams (no
framework, no new dependency) translating JSON bodies to the typed
request/response dataclasses via the :mod:`repro.serve.api` wire codecs.

Routes::

    POST /v1/matvec    {"model": ..., "x": [...]}
    POST /v1/solve     {"model": ..., "b": [...], "method": "direct"|"cg"}
    POST /v1/predict   {"model": ..., "y": [...]}
    POST /v1/logdet    {"model": ...}
    GET  /v1/health
    GET  /metrics                      (OpenMetrics text exposition)

Errors map onto conventional status codes: 400 for validation failures, 404
for unknown models/routes, 500 otherwise — always with a JSON body
``{"error": ..., "type": ...}``.

Quick use::

    server = InferenceServer(registry)
    http = await serve_http(server, host="127.0.0.1", port=8080)
    ...
    await http.aclose()
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

import numpy as np

from .api import (
    HealthRequest,
    MetricsRequest,
    ModelNotFoundError,
    RequestValidationError,
    request_from_wire,
    response_to_wire,
)
from .server import InferenceServer

__all__ = ["HttpAdapter", "serve_http"]

#: Longest accepted request body (64 MiB — a 4096-point block RHS is ~3 MiB).
MAX_BODY_BYTES = 64 * 2**20

_POST_ROUTES = {
    "/v1/matvec": "matvec",
    "/v1/solve": "solve",
    "/v1/predict": "predict",
    "/v1/logdet": "logdet",
}
_GET_ROUTES = {
    "/v1/health": "health",
    "/health": "health",
    "/metrics": "metrics",
}

_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _error_status(exc: Exception) -> int:
    if isinstance(exc, ModelNotFoundError):
        return 404
    if isinstance(exc, (RequestValidationError, ValueError)):
        return 400
    return 500


class HttpAdapter:
    """One bound listening socket translating HTTP to the async service API."""

    def __init__(self, server: InferenceServer):
        self.server = server
        self._listener: Optional[asyncio.AbstractServer] = None

    # --------------------------------------------------------------- lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)`` pair."""
        self._listener = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        sockname = self._listener.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("adapter is not started")
        return self._listener.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    # -------------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, content_type = await self._dispatch(
                    method, path, body
                )
                await self._write_response(
                    writer, status, payload, content_type, keep_alive
                )
                if not keep_alive:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"malformed request line: {exc}") from exc
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], headers, body

    # ---------------------------------------------------------------- dispatch
    async def _dispatch(self, method: str, path: str, body: bytes):
        try:
            if method == "GET" and path in _GET_ROUTES:
                endpoint = _GET_ROUTES[path]
                if endpoint == "metrics":
                    response = await self.server.metrics(MetricsRequest())
                    return 200, response.text.encode("utf-8"), response.content_type
                response = await self.server.health(HealthRequest())
                return 200, _json(response_to_wire(response)), "application/json"
            if method == "POST" and path in _POST_ROUTES:
                try:
                    payload = json.loads(body.decode("utf-8")) if body else {}
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise RequestValidationError(
                        f"request body is not valid JSON: {exc}"
                    ) from exc
                request = request_from_wire(_POST_ROUTES[path], payload)
                response = await self.server.handle(request)
                return 200, _json(response_to_wire(response)), "application/json"
            if path in set(_POST_ROUTES) | set(_GET_ROUTES):
                raise _HttpError(405, f"{method} not allowed on {path}")
            raise _HttpError(404, f"no route {path!r}")
        except _HttpError as exc:
            return (
                exc.status,
                _json({"error": str(exc), "type": "http"}),
                "application/json",
            )
        except Exception as exc:
            return (
                _error_status(exc),
                _json({"error": str(exc), "type": type(exc).__name__}),
                "application/json",
            )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        await writer.drain()


def _json(payload: dict) -> bytes:
    return json.dumps(payload, default=_default).encode("utf-8")


def _default(value: object):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


async def serve_http(
    server: InferenceServer, host: str = "127.0.0.1", port: int = 0
) -> HttpAdapter:
    """Start an :class:`HttpAdapter` for ``server``; returns it bound."""
    adapter = HttpAdapter(server)
    await adapter.start(host=host, port=port)
    return adapter

"""Typed error hierarchy of the resilience subsystem.

Every guarded boundary in the pipeline (sample sketching, the packed sweep
engine, artifact loads, Krylov solves) reports failures through this
hierarchy, so callers can distinguish *what* failed without string-matching:

* a ``strict``-mode :class:`~repro.resilience.policy.RecoveryPolicy` converts
  any detected fault into the matching typed error;
* ``warn``/``recover`` modes only raise when the recovery budget is
  exhausted — and then still through these types, never a bare
  ``RuntimeError``/``struct.error``.

All errors carry the pipeline ``stage`` they were detected at and a free-form
``context`` dict for diagnostics (retry counts, budgets, residuals).
"""

from __future__ import annotations

from typing import Dict, Optional


class ResilienceError(RuntimeError):
    """Base of every typed failure surfaced by the resilience subsystem."""

    def __init__(
        self,
        message: str,
        *,
        stage: str = "",
        context: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.context: Dict[str, object] = dict(context or {})


class ConstructionFaultError(ResilienceError):
    """The construction sweep failed (engine error, injected launch fault)."""


class SampleCorruptionError(ConstructionFaultError):
    """A sketched sample block carried NaN/Inf entries at the launch boundary."""


class RankSaturationError(ConstructionFaultError):
    """Adaptive sampling exhausted its budget before every node converged."""


class MemoryBudgetError(ResilienceError):
    """The packed sweep's workspace would exceed the configured byte budget."""


class SolveDidNotConvergeError(ResilienceError):
    """A Krylov solve exhausted ``maxiter`` without reaching the tolerance.

    Carries the non-converged :class:`~repro.solvers.krylov.KrylovResult` as
    ``result`` so diagnostics (residual history, health events) survive the
    raise.
    """

    def __init__(
        self,
        message: str,
        *,
        result: object = None,
        stage: str = "solve",
        context: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message, stage=stage, context=context)
        self.result = result


class EscalationExhaustedError(SolveDidNotConvergeError):
    """Every rung of the solver escalation ladder failed to reach tolerance."""


class ArtifactIntegrityError(ResilienceError):
    """A persisted artifact failed its integrity checks (checksums, bounds)."""

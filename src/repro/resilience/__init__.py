"""Guarded execution: recovery policies, typed errors and fault injection.

The resilience subsystem turns the warn-only health signals of
:mod:`repro.observe` into recovery *actions*, threaded through
:class:`~repro.api.policy.ExecutionPolicy` exactly like the tracer::

    policy = repro.ExecutionPolicy(recovery="recover")     # or RecoveryPolicy(...)
    h2 = repro.compress(points, kernel, policy=policy)

* :class:`RecoveryPolicy` — strict / warn / recover modes with per-stage
  retry budgets, consulted at every guarded boundary (sample sketching, the
  packed sweep engine, artifact loads, Krylov solves);
* :class:`~repro.resilience.errors.ResilienceError` and subclasses — the
  typed failure surface (never a silent wrong answer);
* :class:`FaultInjector` — deterministic, seedable fault injection
  (``ExecutionPolicy(faults=...)`` / ``REPRO_FAULTS``) exercising every
  recovery path reproducibly;
* the solver escalation ladder lives in :mod:`repro.solvers.ladder`
  (CG → preconditioned CG → GMRES(m) → HODLR direct).
"""

from .errors import (
    ArtifactIntegrityError,
    ConstructionFaultError,
    EscalationExhaustedError,
    MemoryBudgetError,
    RankSaturationError,
    ResilienceError,
    SampleCorruptionError,
    SolveDidNotConvergeError,
)
from .faults import FAULT_KINDS, FaultInjector, FaultSpec, InjectedFault
from .policy import DEFAULT_LADDER, MODES, RecoveryPolicy, resilience_adapter

__all__ = [
    "ArtifactIntegrityError",
    "ConstructionFaultError",
    "DEFAULT_LADDER",
    "EscalationExhaustedError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "MODES",
    "MemoryBudgetError",
    "RankSaturationError",
    "RecoveryPolicy",
    "ResilienceError",
    "SampleCorruptionError",
    "SolveDidNotConvergeError",
    "resilience_adapter",
]

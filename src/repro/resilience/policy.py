"""Recovery policy: what the pipeline *does* when a guarded boundary trips.

PR 8's health probes detect bad states (NaN samples, stagnating solves,
rank saturation) but only warn.  :class:`RecoveryPolicy` — carried by
``ExecutionPolicy(recovery=...)`` like the tracer — turns those signals into
actions, with three modes:

``strict``
    Any detected fault raises the matching typed
    :class:`~repro.resilience.errors.ResilienceError` immediately.  For CI
    and debugging: nothing is papered over.
``warn``
    Recovery actions run (a corrupted pipeline has no usable "continue
    as-is"), and every one is announced through the ``repro.resilience``
    structured logger + the ``resilience.warnings`` counter.  Conditions
    with a usable degraded outcome (a non-converged solve, which carries an
    explicit ``converged=False``) only warn and return.
``recover``
    Recovery actions run silently — visible only as tracer events and the
    ``resilience.retries`` / ``resilience.recoveries`` /
    ``resilience.escalations`` counters.

The guarantee in every mode: *never a silent wrong answer*.  A fault is
either recovered (retry/fallback/escalation producing a verified-equivalent
result) or surfaced as a typed error / explicit flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..observe.health import StructuredLogAdapter
from ..utils.env import normalize_choice

#: Recognised recovery modes.
MODES = ("strict", "warn", "recover")

#: Default rung order of the solver escalation ladder.
DEFAULT_LADDER: Tuple[str, ...] = ("cg", "pcg", "gmres", "direct")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Per-stage recovery budgets and the strict/warn/recover mode.

    Attributes
    ----------
    mode:
        ``"strict"`` / ``"warn"`` / ``"recover"`` (see module docstring).
    max_retries:
        Retry budget of the in-place recoveries: sample-block relaunches
        after NaN/Inf screening, and packed-sweep retries after an engine
        failure (before falling back to the reference loop).
    max_sample_retries:
        Full re-construction budget of the rank-saturation recovery; the
        first retry escalates the sample budget by ``sample_budget_factor``,
        later retries additionally relax the ID tolerance by
        ``tolerance_relax``.
    sample_budget_factor / tolerance_relax:
        Escalation factors of the rank-saturation retries.
    rung_maxiter:
        Per-rung iteration budget of the solver escalation ladder.
    gmres_restart:
        Restart length of the ladder's GMRES(m) rung.
    memory_budget_bytes:
        Optional hard cap on the packed sweep's estimated workspace bytes;
        a breach falls back to the (streaming, per-node) reference loop.
    ladder:
        Rung order of the escalation ladder (subset/reorder to customise).
    """

    mode: str = "recover"
    max_retries: int = 2
    max_sample_retries: int = 2
    sample_budget_factor: float = 2.0
    tolerance_relax: float = 10.0
    rung_maxiter: int = 100
    gmres_restart: int = 30
    memory_budget_bytes: Optional[int] = None
    ladder: Tuple[str, ...] = field(default=DEFAULT_LADDER)

    def __post_init__(self) -> None:
        mode = normalize_choice(self.mode)
        if mode not in MODES:
            raise ValueError(
                f"unknown recovery mode {self.mode!r}; use one of {list(MODES)}"
            )
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "ladder", tuple(self.ladder))
        if self.max_retries < 0 or self.max_sample_retries < 0:
            raise ValueError("retry budgets must be non-negative")

    # ------------------------------------------------------------ conveniences
    @classmethod
    def strict(cls, **overrides: object) -> "RecoveryPolicy":
        return cls(mode="strict", **overrides)  # type: ignore[arg-type]

    @classmethod
    def warn(cls, **overrides: object) -> "RecoveryPolicy":
        return cls(mode="warn", **overrides)  # type: ignore[arg-type]

    @classmethod
    def recover(cls, **overrides: object) -> "RecoveryPolicy":
        return cls(mode="recover", **overrides)  # type: ignore[arg-type]

    def with_mode(self, mode: str) -> "RecoveryPolicy":
        return replace(self, mode=mode)


_DEFAULT_ADAPTER: Optional[StructuredLogAdapter] = None


def resilience_adapter() -> StructuredLogAdapter:
    """The shared structured-log adapter of the resilience subsystem.

    Warnings go to the ``repro.resilience`` logger and increment the
    ``resilience.warnings`` counter (distinct from ``health.warnings`` so
    dashboards can tell detection from recovery).
    """
    global _DEFAULT_ADAPTER
    if _DEFAULT_ADAPTER is None:
        _DEFAULT_ADAPTER = StructuredLogAdapter(
            "repro.resilience", counter="resilience.warnings"
        )
    return _DEFAULT_ADAPTER

"""Deterministic, seedable fault injection for the recovery paths.

Recovery code that only runs when hardware misbehaves is dead code until the
day it is load-bearing; this module makes every recovery path exercisable on
demand and *reproducibly*.  A :class:`FaultInjector` carries a registry of
fault specs — installed via ``ExecutionPolicy(faults=...)`` or the
``REPRO_FAULTS`` environment variable — and is consulted at the same guarded
boundaries the real failures would surface at:

========================  ====================================================
fault kind                injection site / effect
========================  ====================================================
``nan-in-gemm-output``    poisons entries of a sketched sample block ``Y``
                          with NaN at the backend launch boundary
``fail-nth-launch``       raises :class:`InjectedFault` at the Nth packed
                          sweep launch (simulates an engine/driver failure)
``corrupt-artifact-buffer``  flips bytes inside a stored artifact's buffer
                          section after a cache ``put``
``memory-budget-exceeded``  raises
                          :class:`~repro.resilience.errors.MemoryBudgetError`
                          at the packed workspace allocation
``stall-convergence``     caps a Krylov solve's ``maxiter`` to ``iters`` so
                          it returns ``converged=False``
========================  ====================================================

Determinism: firing is counter-based (the ``nth`` eligible event fires, for
``times`` firings), and corruption positions come from a dedicated seeded
generator — so a failing CI run replays exactly, and a recovery retry under
``times=1`` sees a clean re-execution.

Spec grammar (``REPRO_FAULTS`` / ``ExecutionPolicy(faults="...")``)::

    kind[:key=value[,key=value...]][;kind...]

e.g. ``"nan-in-gemm-output:nth=2;fail-nth-launch:nth=1,times=3"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..observe.metrics import metrics as _global_metrics
from .errors import MemoryBudgetError

#: Every fault class the injector understands (also the matrix the
#: fault-injection tests sweep).
FAULT_KINDS = (
    "nan-in-gemm-output",
    "fail-nth-launch",
    "corrupt-artifact-buffer",
    "memory-budget-exceeded",
    "stall-convergence",
)


class InjectedFault(RuntimeError):
    """The raw injected failure — stands in for a backend/driver error.

    Deliberately *not* a :class:`~repro.resilience.errors.ResilienceError`:
    it models the untyped exception a real engine failure would raise; the
    guards are responsible for wrapping it into the typed hierarchy.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault class.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    nth:
        Fire on the ``nth`` eligible event (1-based) at the fault's site.
    times:
        How many times to fire once armed (``-1``: every eligible event).
    count:
        Entries to poison / bytes to flip for the corruption faults.
    iters:
        The ``maxiter`` cap imposed by ``stall-convergence``.
    """

    kind: str
    nth: int = 1
    times: int = 1
    count: int = 4
    iters: int = 3

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; registered: {list(FAULT_KINDS)}"
            )
        if self.nth < 1:
            raise ValueError("nth must be >= 1 (1-based event index)")


def _parse_spec(text: str) -> List[FaultSpec]:
    specs: List[FaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, params = part.partition(":")
        spec = FaultSpec(kind=kind.strip().casefold())
        for item in params.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or key not in ("nth", "times", "count", "iters"):
                raise ValueError(
                    f"malformed fault parameter {item!r} in {part!r}; "
                    "expected nth=/times=/count=/iters="
                )
            spec = replace(spec, **{key: int(value)})
        specs.append(spec)
    return specs


class FaultInjector:
    """Counter-based deterministic fault injection at the guarded boundaries.

    Parameters
    ----------
    specs:
        A spec string (see the module grammar), a single :class:`FaultSpec`,
        or an iterable of specs/strings.
    seed:
        Seed of the generator choosing corruption positions.  Fixed per
        injector so a CI failure replays bit-identically.
    """

    def __init__(
        self,
        specs: Union[str, FaultSpec, Iterable[Union[str, FaultSpec]]] = (),
        seed: int = 0,
    ):
        self.specs: Dict[str, FaultSpec] = {}
        if isinstance(specs, (str, FaultSpec)):
            specs = [specs]
        for item in specs:
            for spec in _parse_spec(item) if isinstance(item, str) else [item]:
                self.specs[spec.kind] = spec
        self._events: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        #: Chronological record of every firing (kind, site, event index).
        self.log: List[Dict[str, object]] = []
        self._rng = np.random.default_rng(seed)

    @classmethod
    def from_spec(cls, text: str, seed: int = 0) -> "FaultInjector":
        """Injector from the ``REPRO_FAULTS`` grammar."""
        return cls(text, seed=seed)

    @classmethod
    def from_env(cls, seed: int = 0) -> "Optional[FaultInjector]":
        """Injector configured by ``REPRO_FAULTS``, or ``None`` when unset."""
        raw = os.environ.get("REPRO_FAULTS", "").strip()
        if not raw:
            return None
        return cls.from_spec(raw, seed=seed)

    # ------------------------------------------------------------------ firing
    def installed(self, kind: str) -> bool:
        return kind in self.specs

    def fired(self, kind: str) -> int:
        """How many times ``kind`` has fired so far."""
        return self._fired.get(kind, 0)

    def _fire(self, kind: str, site: str) -> Optional[FaultSpec]:
        spec = self.specs.get(kind)
        if spec is None:
            return None
        events = self._events.get(kind, 0) + 1
        self._events[kind] = events
        if events < spec.nth:
            return None
        fired = self._fired.get(kind, 0)
        if spec.times >= 0 and fired >= spec.times:
            return None
        self._fired[kind] = fired + 1
        self.log.append({"kind": kind, "site": site, "event": events})
        _global_metrics().counter("resilience.faults_injected").inc()
        return spec

    # ------------------------------------------------------------- fault sites
    def fail_launch(self, site: str) -> None:
        """Raise :class:`InjectedFault` when ``fail-nth-launch`` is armed."""
        if self._fire("fail-nth-launch", site) is not None:
            raise InjectedFault(f"injected launch failure at {site}")

    def memory_budget(self, site: str) -> None:
        """Raise a typed budget breach when ``memory-budget-exceeded`` fires."""
        if self._fire("memory-budget-exceeded", site) is not None:
            raise MemoryBudgetError(
                f"injected memory-budget breach at {site}",
                stage=site,
                context={"injected": True},
            )

    def corrupt_gemm_output(self, y: np.ndarray) -> np.ndarray:
        """A NaN-poisoned copy of a sample block when the fault fires."""
        spec = self._fire("nan-in-gemm-output", "construct.sample")
        if spec is None:
            return y
        poisoned = np.array(y, dtype=np.float64, copy=True)
        k = min(max(1, spec.count), poisoned.size)
        positions = self._rng.choice(poisoned.size, size=k, replace=False)
        poisoned.flat[positions] = np.nan
        return poisoned

    def corrupt_artifact(self, path: object) -> bool:
        """Flip bytes inside the buffer section of a stored artifact.

        Offsets are drawn from the second half of the file so the corruption
        lands in buffer data (the header is a few hundred bytes at the front)
        and is caught by the per-buffer checksums, not by JSON parsing.
        """
        spec = self._fire("corrupt-artifact-buffer", "persist.put")
        if spec is None:
            return False
        size = os.path.getsize(path)
        lo = size // 2
        k = max(1, spec.count)
        offsets = self._rng.integers(lo, size, size=k)
        with open(path, "r+b") as fh:
            for offset in offsets:
                fh.seek(int(offset))
                byte = fh.read(1)
                fh.seek(int(offset))
                fh.write(bytes([byte[0] ^ 0xFF]))
        return True

    def stall_maxiter(self, default: Optional[int]) -> Optional[int]:
        """The ``maxiter`` a solve should run with (capped while firing)."""
        spec = self._fire("stall-convergence", "solve")
        if spec is None:
            return default
        if default is None:
            return spec.iters
        return min(int(default), spec.iters)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        kinds = ",".join(sorted(self.specs))
        return f"FaultInjector([{kinds}], fired={dict(self._fired)})"

"""A minimal linear-operator abstraction shared by every matrix format.

The solver subsystem (:mod:`repro.solvers`) is matrix-free: Krylov methods and
norm estimators only ever apply ``A @ x``.  This module provides the single
adapter that turns *anything the library produces* — an :class:`~repro.hmatrix.h2matrix.H2Matrix`,
:class:`~repro.hmatrix.hodlr.HODLRMatrix`, :class:`~repro.hmatrix.hmatrix.HMatrix`,
:class:`~repro.linalg.low_rank.LowRankMatrix`, a sketching operator, a dense
array, a SciPy sparse matrix or a bare callable — into a uniform object with
``shape``, ``matvec``, ``matmat`` and ``@``, so solvers never special-case
formats.

Block right-hand sides are routed through the wrapped object's ``matmat``
when it provides one (the batched multi-RHS apply of ``H2Matrix``), so a
``(n, k)`` input costs one batched sweep instead of ``k`` column-at-a-time
matvecs; otherwise the block is handed to ``matvec`` unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..api.protocol import HierarchicalOperator

MatVec = Callable[[np.ndarray], np.ndarray]


class LinearOperator:
    """A square linear operator defined by its action on (blocks of) vectors."""

    def __init__(
        self,
        shape: Tuple[int, int],
        matvec: MatVec,
        rmatvec: Optional[MatVec] = None,
        matmat: Optional[MatVec] = None,
        rmatmat: Optional[MatVec] = None,
        source: object = None,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self._matvec = matvec
        self._rmatvec = rmatvec
        self._matmat = matmat
        self._rmatmat = rmatmat
        #: The adapted object (when built by :func:`as_linear_operator`);
        #: lets diagnostics reach e.g. an ``H2Matrix``'s apply backend.
        self.source = source

    @property
    def n(self) -> int:
        return self.shape[1]

    def _split_complex(self, x: np.ndarray, apply) -> np.ndarray:
        """Apply the real operator to a complex input part-by-part.

        ``A (x_re + i x_im) = A x_re + i A x_im`` — the scipy
        ``LinearOperator`` semantics; the imaginary part is never silently
        dropped by a float64 cast.
        """
        real = apply(np.ascontiguousarray(x.real, dtype=np.float64))
        imag = apply(np.ascontiguousarray(x.imag, dtype=np.float64))
        return real + 1j * imag

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator to a vector ``(n,)`` or block ``(n, k)``."""
        x = np.asarray(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"operator has {self.shape[1]} columns, got input with {x.shape[0]} rows"
            )
        if np.iscomplexobj(x):
            return self._split_complex(x, self.matvec)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2 and self._matmat is not None:
            return np.asarray(self._matmat(x))
        return np.asarray(self._matvec(x))

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Apply to a block ``(n, k)`` through the dedicated multi-RHS path."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {x.shape}")
        return self.matvec(x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the transpose ``A^T x`` (defaults to ``matvec`` when symmetric)."""
        x = np.asarray(x)
        if np.iscomplexobj(x):
            return self._split_complex(x, self.rmatvec)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2 and self._rmatmat is not None:
            return np.asarray(self._rmatmat(x))
        if self._rmatvec is None:
            return self.matvec(x)
        return np.asarray(self._rmatvec(x))

    def rmatmat(self, x: np.ndarray) -> np.ndarray:
        """Transpose apply to a block ``(n, k)``."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"rmatmat expects a 2-D block, got shape {x.shape}")
        return self.rmatvec(x)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)


class ShiftedLinearOperator(LinearOperator):
    """``A + shift I`` as a matrix-free operator.

    The solver-side view of a nugget/regularization term: the base operator
    keeps iterating on its fast apply path (for an
    :class:`~repro.hmatrix.h2matrix.H2Matrix`, the compiled batched plan) and
    the shift is added as an axpy on the way out.  ``source`` forwards to the
    base operator's source so backend/launch diagnostics keep working.
    """

    def __init__(self, base: object, shift: float, n: int | None = None):
        base_op = as_linear_operator(base, n=n)
        self.base = base_op
        self.shift = float(shift)
        super().__init__(
            base_op.shape,
            lambda x: base_op.matvec(x) + self.shift * x,
            rmatvec=lambda x: base_op.rmatvec(x) + self.shift * x,
            matmat=lambda x: base_op.matmat(x) + self.shift * x,
            rmatmat=lambda x: base_op.rmatmat(x) + self.shift * x,
            source=base_op.source,
        )


def as_linear_operator(
    a: object, n: int | None = None, shift: float = 0.0
) -> LinearOperator:
    """Adapt ``a`` to a :class:`LinearOperator`.

    Accepted inputs, in the order they are recognised:

    * an existing :class:`LinearOperator` (returned unchanged);
    * any :class:`~repro.api.protocol.HierarchicalOperator` — the check is
      *structural*, so every format (``H2Matrix``, ``HODLRMatrix``,
      ``HMatrix``, HSS/recompression results, third-party formats) adapts
      without isinstance special-casing: the protocol guarantees
      ``matvec``/``matmat``/``rmatvec``/``rmatmat``, and block right-hand
      sides always route through the dedicated multi-RHS applies;
    * any other object with ``.matvec`` and ``.shape`` (e.g.
      :class:`~repro.linalg.low_rank.LowRankMatrix`), with
      ``.matmat``/``.rmatmat`` picked up when present;
    * a sketching operator (``.matvec`` and ``.n``);
    * a dense :class:`numpy.ndarray` or a SciPy sparse matrix;
    * a bare callable ``x -> A @ x`` together with the dimension ``n``.

    A nonzero ``shift`` wraps the adapted operator as
    :class:`ShiftedLinearOperator`, i.e. the result applies ``A + shift I`` —
    the usual route to solving shifted (nugget-regularized) kernel systems
    without touching the stored matrix.

    Hierarchical formats act in the *original* point ordering (their
    ``matvec`` default), so systems and right-hand sides never need manual
    permutation.
    """
    if shift:
        return ShiftedLinearOperator(a, shift, n=n)
    if isinstance(a, LinearOperator):
        return a
    if isinstance(a, HierarchicalOperator):
        return LinearOperator(
            tuple(a.shape), a.matvec, a.rmatvec, a.matmat, a.rmatmat, source=a
        )
    matvec = getattr(a, "matvec", None)
    if callable(matvec):
        shape = getattr(a, "shape", None)
        if shape is None:
            size = getattr(a, "n", None)
            if size is None:
                raise TypeError(f"cannot infer the dimension of {type(a).__name__}")
            shape = (int(size), int(size))
        rmatvec = getattr(a, "rmatvec", None)
        matmat = getattr(a, "matmat", None)
        rmatmat = getattr(a, "rmatmat", None)
        return LinearOperator(
            tuple(shape),
            matvec,
            rmatvec if callable(rmatvec) else None,
            matmat if callable(matmat) else None,
            rmatmat if callable(rmatmat) else None,
            source=a,
        )
    if isinstance(a, np.ndarray):
        if a.ndim != 2:
            raise ValueError("dense operator must be a 2D array")
        mat = np.asarray(a, dtype=np.float64)
        return LinearOperator(
            mat.shape, lambda x: mat @ x, lambda x: mat.T @ x, source=a
        )
    if hasattr(a, "shape") and hasattr(a, "dot"):  # SciPy sparse matrix
        return LinearOperator(
            tuple(a.shape), lambda x: a @ x, lambda x: a.T @ x, source=a
        )
    if callable(a):
        if n is None:
            raise ValueError("a bare callable operator requires the dimension n")
        return LinearOperator((n, n), a, source=a)
    raise TypeError(f"cannot interpret {type(a).__name__} as a linear operator")

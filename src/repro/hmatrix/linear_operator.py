"""A minimal linear-operator abstraction shared by every matrix format.

The solver subsystem (:mod:`repro.solvers`) is matrix-free: Krylov methods and
norm estimators only ever apply ``A @ x``.  This module provides the single
adapter that turns *anything the library produces* — an :class:`~repro.hmatrix.h2matrix.H2Matrix`,
:class:`~repro.hmatrix.hodlr.HODLRMatrix`, :class:`~repro.hmatrix.hmatrix.HMatrix`,
:class:`~repro.linalg.low_rank.LowRankMatrix`, a sketching operator, a dense
array, a SciPy sparse matrix or a bare callable — into a uniform object with
``shape``, ``matvec`` and ``@``, so solvers never special-case formats.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

MatVec = Callable[[np.ndarray], np.ndarray]


class LinearOperator:
    """A square linear operator defined by its action on (blocks of) vectors."""

    def __init__(
        self,
        shape: Tuple[int, int],
        matvec: MatVec,
        rmatvec: Optional[MatVec] = None,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self._matvec = matvec
        self._rmatvec = rmatvec

    @property
    def n(self) -> int:
        return self.shape[1]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator to a vector ``(n,)`` or block ``(n, k)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"operator has {self.shape[1]} columns, got input with {x.shape[0]} rows"
            )
        return np.asarray(self._matvec(x))

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the transpose ``A^T x`` (defaults to ``matvec`` when symmetric)."""
        if self._rmatvec is None:
            return self.matvec(x)
        x = np.asarray(x, dtype=np.float64)
        return np.asarray(self._rmatvec(x))

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)


def as_linear_operator(a: object, n: int | None = None) -> LinearOperator:
    """Adapt ``a`` to a :class:`LinearOperator`.

    Accepted inputs, in the order they are recognised:

    * an existing :class:`LinearOperator` (returned unchanged);
    * any hierarchical format or low-rank matrix with ``.matvec`` and
      ``.shape`` (``H2Matrix``, ``HODLRMatrix``, ``HMatrix``, ``LowRankMatrix``);
    * a sketching operator (``.matvec`` and ``.n``);
    * a dense :class:`numpy.ndarray` or a SciPy sparse matrix;
    * a bare callable ``x -> A @ x`` together with the dimension ``n``.

    Hierarchical formats act in the *original* point ordering (their
    ``matvec`` default), so systems and right-hand sides never need manual
    permutation.
    """
    if isinstance(a, LinearOperator):
        return a
    matvec = getattr(a, "matvec", None)
    if callable(matvec):
        shape = getattr(a, "shape", None)
        if shape is None:
            size = getattr(a, "n", None)
            if size is None:
                raise TypeError(f"cannot infer the dimension of {type(a).__name__}")
            shape = (int(size), int(size))
        rmatvec = getattr(a, "rmatvec", None)
        return LinearOperator(tuple(shape), matvec, rmatvec if callable(rmatvec) else None)
    if isinstance(a, np.ndarray):
        if a.ndim != 2:
            raise ValueError("dense operator must be a 2D array")
        mat = np.asarray(a, dtype=np.float64)
        return LinearOperator(mat.shape, lambda x: mat @ x, lambda x: mat.T @ x)
    if hasattr(a, "shape") and hasattr(a, "dot"):  # SciPy sparse matrix
        return LinearOperator(tuple(a.shape), lambda x: a @ x, lambda x: a.T @ x)
    if callable(a):
        if n is None:
            raise ValueError("a bare callable operator requires the dimension n")
        return LinearOperator((n, n), a)
    raise TypeError(f"cannot interpret {type(a).__name__} as a linear operator")

"""Adaptive cross approximation (ACA) with partial pivoting.

ACA builds a low-rank approximation of a matrix block from O(k (m + n)) of its
entries.  It is the classical entry-evaluation-based compression scheme used
by H-matrix codes (HLIBpro, ButterflyPACK's entry-based mode, ...); in this
reproduction it powers the non-nested :class:`~repro.hmatrix.hmatrix.HMatrix`
and :class:`~repro.hmatrix.hodlr.HODLRMatrix` baselines that the paper
compares against.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

RowFunc = Callable[[int], np.ndarray]
ColFunc = Callable[[int], np.ndarray]


def aca_low_rank(
    row_func: RowFunc,
    col_func: ColFunc,
    num_rows: int,
    num_cols: int,
    tol: float = 1e-6,
    max_rank: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Partial-pivoted ACA of an ``num_rows x num_cols`` block.

    Parameters
    ----------
    row_func, col_func:
        Functions returning row ``i`` (length ``num_cols``) and column ``j``
        (length ``num_rows``) of the block.
    tol:
        Relative stopping tolerance: iteration stops once the norm of the new
        rank-one update falls below ``tol`` times the estimated block norm.
    max_rank:
        Optional hard cap on the rank.

    Returns
    -------
    (U, V):
        Factors with ``block ~= U @ V.T``; both have ``k`` columns.
    """
    if num_rows <= 0 or num_cols <= 0:
        return np.zeros((max(num_rows, 0), 0)), np.zeros((max(num_cols, 0), 0))
    cap = min(num_rows, num_cols)
    if max_rank is not None:
        cap = min(cap, int(max_rank))

    u_cols: list[np.ndarray] = []
    v_cols: list[np.ndarray] = []
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    frob_sq = 0.0
    pivot_row = 0

    for _ in range(cap):
        # Residual row at the pivot row.
        row = np.array(row_func(pivot_row), dtype=np.float64).reshape(-1)
        for u, v in zip(u_cols, v_cols):
            row = row - u[pivot_row] * v
        used_rows.add(pivot_row)

        # Column pivot: largest residual entry outside already-used columns.
        masked = np.abs(row.copy())
        for j in used_cols:
            masked[j] = -np.inf
        pivot_col = int(np.argmax(masked))
        pivot_val = row[pivot_col]
        if not np.isfinite(pivot_val) or abs(pivot_val) < np.finfo(np.float64).tiny:
            break
        used_cols.add(pivot_col)

        col = np.array(col_func(pivot_col), dtype=np.float64).reshape(-1)
        for u, v in zip(u_cols, v_cols):
            col = col - v[pivot_col] * u

        u_new = col / pivot_val
        v_new = row
        u_cols.append(u_new)
        v_cols.append(v_new)

        # Frobenius-norm bookkeeping for the stopping test.
        update_sq = float(np.dot(u_new, u_new) * np.dot(v_new, v_new))
        cross = 0.0
        for u, v in zip(u_cols[:-1], v_cols[:-1]):
            cross += float(np.dot(u, u_new) * np.dot(v, v_new))
        frob_sq += update_sq + 2.0 * cross
        frob_sq = max(frob_sq, update_sq)
        if np.sqrt(update_sq) <= tol * np.sqrt(max(frob_sq, np.finfo(np.float64).tiny)):
            break

        # Next row pivot: largest residual entry of the new column outside used rows.
        masked_col = np.abs(u_new.copy())
        for i in used_rows:
            masked_col[i] = -np.inf
        if np.all(~np.isfinite(masked_col)):
            break
        pivot_row = int(np.argmax(masked_col))

    if not u_cols:
        return np.zeros((num_rows, 0)), np.zeros((num_cols, 0))
    u = np.column_stack(u_cols)
    v = np.column_stack(v_cols)
    return u, v


def aca_from_entry_function(
    entries: Callable[[np.ndarray, np.ndarray], np.ndarray],
    row_indices: np.ndarray,
    col_indices: np.ndarray,
    tol: float = 1e-6,
    max_rank: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """ACA of the block ``entries(row_indices, col_indices)``.

    ``entries`` evaluates arbitrary sub-blocks given global row/column index
    arrays, which is the entry-extraction interface used across the library.
    """
    row_indices = np.asarray(row_indices, dtype=np.int64)
    col_indices = np.asarray(col_indices, dtype=np.int64)

    def row_func(i: int) -> np.ndarray:
        return entries(row_indices[i : i + 1], col_indices)[0]

    def col_func(j: int) -> np.ndarray:
        return entries(row_indices, col_indices[j : j + 1])[:, 0]

    return aca_low_rank(
        row_func,
        col_func,
        row_indices.shape[0],
        col_indices.shape[0],
        tol=tol,
        max_rank=max_rank,
    )

"""Non-nested H matrices (strong admissibility, independent low-rank blocks).

The H format stores every admissible block of the partition as an independent
``U V^T`` factorization (O(N log N) memory), in contrast to the H2 format's
nested bases (O(N) memory).  ButterflyPACK's sketching-based construction
produces H/Butterfly representations; this class plus
:class:`~repro.baselines.hmatrix_sketch.HMatrixSketchingConstructor` and the
entry-based ACA constructor below serve as that comparator in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..linalg.low_rank import LowRankMatrix
from ..tree.block_partition import BlockPartition
from ..tree.cluster_tree import ClusterTree
from .aca import aca_from_entry_function

EntryFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class HMatrix:
    """An H matrix over a block partition (permuted ordering)."""

    tree: ClusterTree
    partition: BlockPartition
    #: ``low_rank[(s, t)]`` is the factorization of admissible block ``(s, t)``.
    low_rank: Dict[Tuple[int, int], LowRankMatrix] = field(default_factory=dict)
    #: ``dense[(s, t)]`` is the dense inadmissible leaf block ``(s, t)``.
    dense: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.tree.num_points
        return (n, n)

    def matvec(self, x: np.ndarray, permuted: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[:, None]
        xp = x if permuted else x[self.tree.perm]
        yp = np.zeros_like(xp)
        for (s, t), lr in self.low_rank.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            cols = slice(self.tree.starts[t], self.tree.ends[t])
            yp[rows] += lr.matvec(xp[cols])
        for (s, t), block in self.dense.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            cols = slice(self.tree.starts[t], self.tree.ends[t])
            yp[rows] += block @ xp[cols]
        y = yp if permuted else yp[self.tree.iperm]
        return y[:, 0] if single else y

    def to_dense(self, permuted: bool = False) -> np.ndarray:
        n = self.tree.num_points
        dense = np.zeros((n, n), dtype=np.float64)
        for (s, t), lr in self.low_rank.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = lr.to_dense()
        for (s, t), block in self.dense.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = block
        if permuted:
            return dense
        return dense[np.ix_(self.tree.iperm, self.tree.iperm)]

    def memory_bytes(self) -> Dict[str, int]:
        low_rank = int(
            sum(lr.left.nbytes + lr.right.nbytes for lr in self.low_rank.values())
        )
        dense = int(sum(d.nbytes for d in self.dense.values()))
        return {"low_rank": low_rank, "dense": dense, "total": low_rank + dense}

    def rank_range(self) -> Tuple[int, int]:
        ranks = [lr.rank for lr in self.low_rank.values()]
        if not ranks:
            return (0, 0)
        return (int(min(ranks)), int(max(ranks)))

    def statistics(self) -> Dict[str, object]:
        lo, hi = self.rank_range()
        return {
            "n": self.tree.num_points,
            "rank_min": lo,
            "rank_max": hi,
            "memory_mb": self.memory_bytes()["total"] / (1024.0**2),
            "num_low_rank_blocks": len(self.low_rank),
            "num_dense_blocks": len(self.dense),
        }


def build_hmatrix_aca(
    partition: BlockPartition,
    entries: EntryFunction,
    tol: float = 1e-6,
    max_rank: int | None = None,
) -> HMatrix:
    """Entry-evaluation H-matrix construction: ACA on every admissible block."""
    tree = partition.tree
    h = HMatrix(tree=tree, partition=partition)
    for level in range(tree.num_levels):
        for s in tree.nodes_at_level(level):
            rows = tree.index_set(s)
            for t in partition.far(s):
                cols = tree.index_set(t)
                u, v = aca_from_entry_function(
                    entries, rows, cols, tol=tol, max_rank=max_rank
                )
                h.low_rank[(s, t)] = LowRankMatrix(u, v)
    for s in tree.leaves():
        rows = tree.index_set(s)
        for t in partition.near(s):
            cols = tree.index_set(t)
            h.dense[(s, t)] = entries(rows, cols)
    return h

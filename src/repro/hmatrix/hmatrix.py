"""Non-nested H matrices (strong admissibility, independent low-rank blocks).

The H format stores every admissible block of the partition as an independent
``U V^T`` factorization (O(N log N) memory), in contrast to the H2 format's
nested bases (O(N) memory).  ButterflyPACK's sketching-based construction
produces H/Butterfly representations; this class plus
:class:`~repro.baselines.hmatrix_sketch.HMatrixSketchingConstructor` and the
entry-based ACA constructor below serve as that comparator in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..api.protocol import HierarchicalOperatorMixin
from ..linalg.low_rank import LowRankMatrix
from ..tree.block_partition import BlockPartition
from ..tree.cluster_tree import ClusterTree
from .aca import aca_from_entry_function

EntryFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class HMatrix(HierarchicalOperatorMixin):
    """An H matrix over a block partition (permuted ordering).

    Implements the :class:`~repro.api.protocol.HierarchicalOperator`
    protocol; the derived applies (including the exact transpose
    ``rmatvec``/``rmatmat`` and the block-RHS ``matmat``) come from the
    shared mixin.
    """

    format_name = "hmatrix"

    tree: ClusterTree
    partition: BlockPartition
    #: ``low_rank[(s, t)]`` is the factorization of admissible block ``(s, t)``.
    low_rank: Dict[Tuple[int, int], LowRankMatrix] = field(default_factory=dict)
    #: ``dense[(s, t)]`` is the dense inadmissible leaf block ``(s, t)``.
    dense: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.tree.num_points
        return (n, n)

    def _apply_permuted(self, x: np.ndarray, transpose: bool = False) -> np.ndarray:
        yp = np.zeros_like(x)
        for (s, t), lr in self.low_rank.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            cols = slice(self.tree.starts[t], self.tree.ends[t])
            if transpose:
                yp[cols] += lr.rmatvec(x[rows])
            else:
                yp[rows] += lr.matvec(x[cols])
        for (s, t), block in self.dense.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            cols = slice(self.tree.starts[t], self.tree.ends[t])
            if transpose:
                yp[cols] += block.T @ x[rows]
            else:
                yp[rows] += block @ x[cols]
        return yp

    def to_dense(self, permuted: bool = False) -> np.ndarray:
        n = self.tree.num_points
        dense = np.zeros((n, n), dtype=np.float64)
        for (s, t), lr in self.low_rank.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = lr.to_dense()
        for (s, t), block in self.dense.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = block
        if permuted:
            return dense
        return dense[np.ix_(self.tree.iperm, self.tree.iperm)]

    def _memory_components(self) -> Dict[str, int]:
        return {
            "low_rank": int(
                sum(lr.left.nbytes + lr.right.nbytes for lr in self.low_rank.values())
            ),
            "dense": int(sum(d.nbytes for d in self.dense.values())),
        }

    def rank_range(self) -> Tuple[int, int]:
        ranks = [lr.rank for lr in self.low_rank.values()]
        if not ranks:
            return (0, 0)
        return (int(min(ranks)), int(max(ranks)))

    def _block_counts(self) -> Tuple[int, int]:
        return (len(self.low_rank), len(self.dense))

    def _extra_statistics(self) -> Dict[str, object]:
        return {"sparsity_constant": self.partition.sparsity_constant()}


def build_hmatrix_aca(
    partition: BlockPartition,
    entries: EntryFunction,
    tol: float = 1e-6,
    max_rank: int | None = None,
) -> HMatrix:
    """Entry-evaluation H-matrix construction: ACA on every admissible block."""
    tree = partition.tree
    h = HMatrix(tree=tree, partition=partition)
    for level in range(tree.num_levels):
        for s in tree.nodes_at_level(level):
            rows = tree.index_set(s)
            for t in partition.far(s):
                cols = tree.index_set(t)
                u, v = aca_from_entry_function(
                    entries, rows, cols, tol=tol, max_rank=max_rank
                )
                h.low_rank[(s, t)] = LowRankMatrix(u, v)
    for s in tree.leaves():
        rows = tree.index_set(s)
        for t in partition.near(s):
            cols = tree.index_set(t)
            h.dense[(s, t)] = entries(rows, cols)
    return h

"""The nested basis tree of an H2 matrix (Fig. 3).

Leaf clusters store their basis ``U_tau`` explicitly; an inner cluster's basis
is represented implicitly through the transfer matrices ``E`` of its children,

    U_tau = [[U_tau1, 0], [0, U_tau2]] @ [[E_tau1], [E_tau2]]            (Eq. 2)

:class:`BasisTree` stores the leaf bases, the per-child transfer matrices and
the per-node ranks, and provides the (memoised) expansion of the explicit
basis of any node — used for dense reconstruction in tests and for entry
extraction of admissible blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..tree.cluster_tree import ClusterTree


@dataclass
class BasisTree:
    """Nested (cluster) bases of an H2 matrix.

    Attributes
    ----------
    tree:
        The cluster tree the bases are defined on.
    leaf_bases:
        ``leaf_bases[node]`` is the explicit ``(cluster_size, rank)`` basis of a
        leaf cluster.
    transfers:
        ``transfers[node]`` is the ``(rank(node), rank(parent))`` transfer matrix
        ``E_node`` of a non-root cluster whose parent has a basis.
    ranks:
        ``ranks[node]`` is the basis rank of every cluster that carries a basis.
    """

    tree: ClusterTree
    leaf_bases: Dict[int, np.ndarray] = field(default_factory=dict)
    transfers: Dict[int, np.ndarray] = field(default_factory=dict)
    ranks: Dict[int, int] = field(default_factory=dict)
    _explicit_cache: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ write
    def set_leaf_basis(self, node: int, basis: np.ndarray) -> None:
        # Contiguous storage: the apply-plan stacking, the persist writer and
        # dense reconstruction all consume these arrays; normalizing here makes
        # downstream BLAS results independent of the constructor's slicing
        # (a saved-and-reloaded matrix reproduces to_dense() bitwise).
        basis = np.ascontiguousarray(basis, dtype=np.float64)
        expected_rows = self.tree.cluster_size(node)
        if basis.shape[0] != expected_rows:
            raise ValueError(
                f"leaf basis for node {node} must have {expected_rows} rows, "
                f"got {basis.shape[0]}"
            )
        self.leaf_bases[node] = basis
        self.ranks[node] = int(basis.shape[1])
        self._explicit_cache.pop(node, None)

    def set_transfer(self, node: int, transfer: np.ndarray) -> None:
        self.transfers[node] = np.ascontiguousarray(transfer, dtype=np.float64)
        self._explicit_cache.clear()

    def set_rank(self, node: int, rank: int) -> None:
        self.ranks[node] = int(rank)

    # ------------------------------------------------------------------- read
    def rank(self, node: int) -> int:
        return int(self.ranks.get(node, 0))

    def has_basis(self, node: int) -> bool:
        return node in self.ranks

    def transfer(self, node: int) -> np.ndarray:
        return self.transfers[node]

    def leaf_basis(self, node: int) -> np.ndarray:
        return self.leaf_bases[node]

    def explicit_basis(self, node: int) -> np.ndarray:
        """The explicit ``(cluster_size, rank)`` basis of ``node`` (memoised).

        Leaves return their stored basis; inner nodes expand Eq. (2)
        recursively.  Intended for tests, dense reconstruction and entry
        extraction on moderate problem sizes — the H2 format never needs the
        explicit inner bases for matvec or construction.
        """
        cached = self._explicit_cache.get(node)
        if cached is not None:
            return cached
        if self.tree.is_leaf(node):
            basis = self.leaf_bases.get(node)
            if basis is None:
                basis = np.zeros((self.tree.cluster_size(node), self.rank(node)))
        else:
            left, right = self.tree.children(node)
            ul = self.explicit_basis(left)
            ur = self.explicit_basis(right)
            el = self.transfers.get(left)
            er = self.transfers.get(right)
            rank = self.rank(node)
            if el is None or er is None:
                basis = np.zeros((self.tree.cluster_size(node), rank))
            else:
                basis = np.vstack([ul @ el, ur @ er])
        self._explicit_cache[node] = basis
        return basis

    def basis_rows(self, node: int, local_rows: np.ndarray) -> np.ndarray:
        """Rows ``local_rows`` (cluster-local indices) of the explicit basis of ``node``."""
        local_rows = np.asarray(local_rows, dtype=np.int64)
        return self.explicit_basis(node)[local_rows]

    # -------------------------------------------------------------- reporting
    def memory_bytes(self) -> int:
        """Bytes stored in leaf bases and transfer matrices."""
        total = sum(b.nbytes for b in self.leaf_bases.values())
        total += sum(e.nbytes for e in self.transfers.values())
        return int(total)

    def rank_range(self) -> tuple[int, int]:
        """Smallest and largest rank over all clusters carrying a basis."""
        values = [r for r in self.ranks.values()]
        if not values:
            return (0, 0)
        return (int(min(values)), int(max(values)))

    def ranks_at_level(self, level: int) -> list[int]:
        return [self.rank(node) for node in self.tree.nodes_at_level(level) if self.has_basis(node)]

    def validate_shapes(self) -> None:
        """Structural consistency checks used by the test-suite."""
        for node, basis in self.leaf_bases.items():
            assert basis.shape[0] == self.tree.cluster_size(node)
            assert basis.shape[1] == self.rank(node)
        for node, transfer in self.transfers.items():
            parent = self.tree.parent(node)
            assert transfer.shape[0] == self.rank(node), (
                f"transfer of node {node} has {transfer.shape[0]} rows, rank is {self.rank(node)}"
            )
            assert transfer.shape[1] == self.rank(parent), (
                f"transfer of node {node} has {transfer.shape[1]} cols, parent rank is "
                f"{self.rank(parent)}"
            )

"""The H2 matrix data structure.

An :class:`H2Matrix` combines

* a cluster tree and block partition (Fig. 1-2),
* a nested basis tree ``U``/``E`` (Fig. 3),
* coupling matrices ``B_{s,t}`` for every admissible leaf pair, and
* dense matrices ``D_{s,t}`` for every inadmissible leaf pair,

and provides the linear-complexity matrix-vector product (upward pass /
coupling phase / downward pass / dense phase), batched entry extraction (used
when an existing H2 matrix serves as the entry evaluator of a new
construction, e.g. the low-rank update experiments), memory accounting for the
Fig. 6 plots, and dense reconstruction for validation on small problems.

The matrix acts on vectors in the *original* point ordering by default; the
internal representation lives in the cluster-tree permuted ordering.

Apply engine
------------
``matvec`` / ``matmat`` and the transpose applies ``rmatvec`` / ``rmatmat``
execute through a *compiled batched plan*
(:mod:`repro.batched.apply_plan`): on first use the matrix is flattened into
per-level stacked block batches which then run as O(levels) batched launches
on a pluggable :class:`~repro.batched.backend.BatchedBackend`.  The backend is
selected per matrix (:attr:`H2Matrix.apply_backend`, default ``"vectorized"``)
or per call (the ``backend=`` argument); the launch statistics accumulate in
the backend's :class:`~repro.batched.counters.KernelLaunchCounter`.  The
original per-node reference loop remains available as :meth:`matvec_loop` and
anchors the equivalence test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from ..api.protocol import HierarchicalOperatorMixin
from ..tree.block_partition import BlockPartition
from ..tree.cluster_tree import ClusterTree
from .basis_tree import BasisTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..batched.apply_plan import H2ApplyPlan
    from ..batched.backend import BatchedBackend


@dataclass
class H2Matrix(HierarchicalOperatorMixin):
    """A (symmetric) H2 matrix over a cluster tree and block partition.

    Implements the :class:`~repro.api.protocol.HierarchicalOperator`
    protocol; the derived applies (``matvec``/``matmat``/``rmatvec``/
    ``rmatmat``/``@``) come from the shared mixin and accept a per-call
    ``backend=`` keyword routed to the compiled batched plan.
    """

    format_name = "h2"

    tree: ClusterTree
    partition: BlockPartition
    basis: BasisTree
    #: ``coupling[(s, t)]`` is ``B_{s,t}`` of shape ``(rank(s), rank(t))``.
    coupling: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)
    #: ``dense[(s, t)]`` is ``D_{s,t}`` of shape ``(size(s), size(t))``.
    dense: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)
    #: Whether the matrix is symmetric (``V_t = U_t``); the constructor in this
    #: reproduction always produces symmetric representations, as in the paper.
    symmetric: bool = True
    #: Backend executing the compiled apply plan: a name from the
    #: :mod:`repro.backends` registry or a
    #: :class:`~repro.batched.backend.BatchedBackend` instance.  ``None``
    #: resolves through ``"auto"`` (the ``REPRO_BACKEND`` environment
    #: variable, falling back to vectorized) on first use; the resolved
    #: instance is kept so launch counters accumulate per matrix.
    apply_backend: "BatchedBackend | str | None" = None
    _plan: "Optional[H2ApplyPlan]" = field(
        default=None, init=False, repr=False, compare=False
    )

    # ----------------------------------------------------------------- basics
    @property
    def shape(self) -> Tuple[int, int]:
        n = self.tree.num_points
        return (n, n)

    def rank_range(self) -> Tuple[int, int]:
        return self.basis.rank_range()

    def level_ranks(self) -> Dict[int, list]:
        """Basis ranks per tree level, for the health telemetry's rank
        histograms (levels whose nodes carry no basis are omitted)."""
        out: Dict[int, list] = {}
        for level in range(self.tree.depth):
            ranks = [
                int(self.basis.rank(node))
                for node in self.tree.nodes_at_level(level)
                if self.basis.has_basis(node)
            ]
            if ranks:
                out[level] = ranks
        return out

    # ----------------------------------------------------------------- matvec
    def apply_plan(self, rebuild: bool = False) -> "H2ApplyPlan":
        """The compiled batched apply plan of this matrix (built and cached on
        first use).

        Pass ``rebuild=True`` after mutating coupling/dense/basis blocks in
        place — the plan holds stacked copies of the block data.
        """
        if self._plan is None or rebuild:
            from ..batched.apply_plan import compile_apply_plan

            self._plan = compile_apply_plan(self)
        return self._plan

    def reuse_plan(self, plan: "H2ApplyPlan") -> "H2ApplyPlan":
        """Adopt a structurally matching compiled plan, re-stacking its operands.

        The hyperparameter-sweep fast path (see
        :meth:`~repro.batched.apply_plan.H2ApplyPlan.refresh`): when this
        matrix was re-constructed over the same geometry with the same
        per-node ranks and block sets as ``plan``'s original matrix, the plan
        skeleton (positions, paddings, stage grouping) is reused and only the
        coefficients are refilled in place.  Raises :class:`ValueError` on a
        structural mismatch — fall back to :meth:`apply_plan` then.
        """
        self._plan = plan.refresh(self)
        return self._plan

    def _resolve_backend(
        self, backend: "BatchedBackend | str | None"
    ) -> "BatchedBackend":
        from ..batched.backend import get_backend

        if backend is not None:
            return get_backend(backend)
        if self.apply_backend is None or isinstance(self.apply_backend, str):
            self.apply_backend = get_backend(self.apply_backend or "auto")
        return self.apply_backend

    def _apply_permuted(
        self,
        x: np.ndarray,
        transpose: bool = False,
        backend: "BatchedBackend | str | None" = None,
    ) -> np.ndarray:
        """Core apply of the :class:`~repro.api.protocol.HierarchicalOperator`
        protocol: execute the compiled batched plan on a permuted 2-D block.

        The public ``matvec``/``matmat``/``rmatvec``/``rmatmat`` derive from
        this through the shared mixin; their optional ``backend=`` keyword
        selects the batched backend for that call only (defaulting to the
        matrix-level :attr:`apply_backend`).
        """
        return self.apply_plan().execute(
            x, backend=self._resolve_backend(backend), transpose=transpose
        )

    def matvec_loop(self, x: np.ndarray, permuted: bool = False) -> np.ndarray:
        """Reference per-node loop apply (the pre-batched implementation).

        Kept as the baseline the compiled engine is validated and benchmarked
        against; production code paths should use :meth:`matvec` /
        :meth:`matmat`.
        """
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[:, None]
        if x.shape[0] != self.num_rows:
            raise ValueError(
                f"dimension mismatch: matrix has {self.num_rows} rows, x has {x.shape[0]}"
            )
        xp = x if permuted else x[self.tree.perm]
        yp = self._matvec_permuted(xp)
        y = yp if permuted else yp[self.tree.iperm]
        return y[:, 0] if single else y

    def _matvec_permuted(self, x: np.ndarray) -> np.ndarray:
        tree = self.tree
        k = x.shape[1]
        y = np.zeros_like(x)

        # Upward pass: xhat_tau = U_tau^T x_tau at leaves, transfer-accumulated
        # at inner nodes.
        xhat: Dict[int, np.ndarray] = {}
        for node in tree.leaves():
            if self.basis.has_basis(node):
                u = self.basis.leaf_bases.get(node)
                if u is None or u.shape[1] == 0:
                    xhat[node] = np.zeros((self.basis.rank(node), k))
                else:
                    xhat[node] = u.T @ x[tree.starts[node] : tree.ends[node]]
        for level in range(tree.depth - 1, 0, -1):
            for node in tree.nodes_at_level(level):
                if not self.basis.has_basis(node):
                    continue
                left, right = tree.children(node)
                acc = np.zeros((self.basis.rank(node), k))
                for child in (left, right):
                    e = self.basis.transfers.get(child)
                    child_hat = xhat.get(child)
                    if e is not None and child_hat is not None and e.size:
                        acc += e.T @ child_hat
                xhat[node] = acc

        # Coupling phase: yhat_s += B_{s,t} xhat_t for every admissible pair.
        yhat: Dict[int, np.ndarray] = {}
        for (s, t), b in self.coupling.items():
            if b.size == 0:
                continue
            xt = xhat.get(t)
            if xt is None:
                continue
            acc = yhat.get(s)
            if acc is None:
                acc = np.zeros((self.basis.rank(s), k))
                yhat[s] = acc
            acc += b @ xt

        # Downward pass: push yhat down the tree and expand at the leaves.
        for level in range(1, tree.depth):
            for node in tree.nodes_at_level(level):
                parent_hat = yhat.get(node)
                if parent_hat is None or tree.is_leaf(node):
                    continue
                for child in tree.children(node):
                    e = self.basis.transfers.get(child)
                    if e is None or e.size == 0:
                        continue
                    acc = yhat.get(child)
                    if acc is None:
                        acc = np.zeros((self.basis.rank(child), k))
                        yhat[child] = acc
                    acc += e @ parent_hat
        for node in tree.leaves():
            node_hat = yhat.get(node)
            if node_hat is None:
                continue
            u = self.basis.leaf_bases.get(node)
            if u is None or u.shape[1] == 0:
                continue
            y[tree.starts[node] : tree.ends[node]] += u @ node_hat

        # Dense (inadmissible leaf) phase.
        for (s, t), d in self.dense.items():
            y[tree.starts[s] : tree.ends[s]] += d @ x[tree.starts[t] : tree.ends[t]]
        return y

    # ------------------------------------------------------- entry extraction
    def leaf_of_index(self, index: int) -> int:
        """The leaf cluster owning permuted index ``index``."""
        tree = self.tree
        node = 0
        while not tree.is_leaf(node):
            left, right = tree.children(node)
            node = left if index < tree.ends[left] else right
        return node

    def _governing_block(self, leaf_s: int, leaf_t: int) -> Tuple[str, int, int]:
        """Find the partition leaf block covering the leaf-cluster pair.

        Returns ``("dense", s, t)`` when the pair is an inadmissible leaf block
        or ``("coupling", a, b)`` for the (unique) admissible ancestor pair.
        """
        if leaf_t in self.partition.near(leaf_s):
            return ("dense", leaf_s, leaf_t)
        s, t = leaf_s, leaf_t
        while True:
            if t in self.partition.far(s):
                return ("coupling", s, t)
            if s == 0 or t == 0:
                raise KeyError(
                    f"no partition block covers leaf pair ({leaf_s}, {leaf_t}); "
                    "the block partition is inconsistent"
                )
            s = self.tree.parent(s)
            t = self.tree.parent(t)

    def get_block(self, rows: np.ndarray, cols: np.ndarray, permuted: bool = True) -> np.ndarray:
        """Evaluate the sub-matrix ``A[rows, cols]`` of the H2 approximation.

        This is the entry-evaluation function required when an existing H2
        matrix is used as the input of a new construction (Section V-A, the H2
        update application).  Indices refer to the permuted ordering by default.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if not permuted:
            rows = self.tree.iperm[rows]
            cols = self.tree.iperm[cols]
        out = np.zeros((rows.shape[0], cols.shape[0]), dtype=np.float64)
        if rows.size == 0 or cols.size == 0:
            return out

        row_leaves = np.array([self.leaf_of_index(int(i)) for i in rows], dtype=np.int64)
        col_leaves = np.array([self.leaf_of_index(int(j)) for j in cols], dtype=np.int64)
        for leaf_s in np.unique(row_leaves):
            sel_r = np.nonzero(row_leaves == leaf_s)[0]
            local_r = rows[sel_r] - self.tree.starts[leaf_s]
            for leaf_t in np.unique(col_leaves):
                sel_c = np.nonzero(col_leaves == leaf_t)[0]
                local_c = cols[sel_c] - self.tree.starts[leaf_t]
                kind, a, b = self._governing_block(int(leaf_s), int(leaf_t))
                if kind == "dense":
                    block = self.dense[(a, b)][np.ix_(local_r, local_c)]
                else:
                    coupling = self.coupling.get((a, b))
                    if coupling is None or coupling.size == 0:
                        block = np.zeros((sel_r.size, sel_c.size))
                    else:
                        row_basis = self.basis.basis_rows(
                            a, rows[sel_r] - self.tree.starts[a]
                        )
                        col_basis = self.basis.basis_rows(
                            b, cols[sel_c] - self.tree.starts[b]
                        )
                        block = row_basis @ coupling @ col_basis.T
                out[np.ix_(sel_r, sel_c)] = block
        return out

    # ------------------------------------------------------------------ dense
    def to_dense(self, permuted: bool = False) -> np.ndarray:
        """Reconstruct the full dense matrix (small problems / tests only)."""
        n = self.num_rows
        dense = np.zeros((n, n), dtype=np.float64)
        for (s, t), block in self.dense.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = block
        for (s, t), b in self.coupling.items():
            if b.size == 0:
                continue
            us = self.basis.explicit_basis(s)
            ut = self.basis.explicit_basis(t)
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = us @ b @ ut.T
        if permuted:
            return dense
        return dense[np.ix_(self.tree.iperm, self.tree.iperm)]

    # ----------------------------------------------------------------- memory
    def _memory_components(self) -> Dict[str, int]:
        """Byte counts per component (Fig. 6); the mixin adds the unified
        ``low_rank`` (= basis + coupling) / ``dense`` / ``total`` keys."""
        return {
            "basis": self.basis.memory_bytes(),
            "coupling": int(sum(b.nbytes for b in self.coupling.values())),
            "dense": int(sum(d.nbytes for d in self.dense.values())),
        }

    # ------------------------------------------------------------- statistics
    def _block_counts(self) -> Tuple[int, int]:
        return (len(self.coupling), len(self.dense))

    def _extra_statistics(self) -> Dict[str, object]:
        return {
            # Legacy alias of the unified ``num_low_rank_blocks`` key.
            "num_coupling_blocks": len(self.coupling),
            "sparsity_constant": self.partition.sparsity_constant(),
        }

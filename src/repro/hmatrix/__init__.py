"""Hierarchical matrix formats: H2 (nested bases), HODLR, HSS and H (non-nested)."""

from .aca import aca_low_rank
from .basis_tree import BasisTree
from .h2matrix import H2Matrix
from .hmatrix import HMatrix
from .hodlr import HODLRMatrix, build_hodlr
from .hss import build_hss

__all__ = [
    "BasisTree",
    "H2Matrix",
    "HMatrix",
    "HODLRMatrix",
    "build_hodlr",
    "build_hss",
    "aca_low_rank",
]

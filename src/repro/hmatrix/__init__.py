"""Hierarchical matrix formats: H2 (nested bases), HODLR, HSS and H (non-nested).

Every format implements the shared
:class:`~repro.api.protocol.HierarchicalOperator` protocol (uniform
``matvec``/``matmat``/``rmatvec``/``rmatmat``/``to_dense``/``memory_bytes``/
``statistics`` with ``permuted=`` semantics); move between formats through
:func:`repro.api.conversion.convert`.
"""

from .aca import aca_low_rank
from .basis_tree import BasisTree
from .h2matrix import H2Matrix
from .hmatrix import HMatrix, build_hmatrix_aca
from .hodlr import HODLRMatrix, build_hodlr, hodlr_from_h2
from .hss import build_hss
from .linear_operator import LinearOperator, ShiftedLinearOperator, as_linear_operator

__all__ = [
    "BasisTree",
    "H2Matrix",
    "HMatrix",
    "HODLRMatrix",
    "build_hmatrix_aca",
    "build_hodlr",
    "hodlr_from_h2",
    "build_hss",
    "aca_low_rank",
    "LinearOperator",
    "ShiftedLinearOperator",
    "as_linear_operator",
]

"""Hierarchical matrix formats: H2 (nested bases), HODLR, HSS and H (non-nested)."""

from .aca import aca_low_rank
from .basis_tree import BasisTree
from .h2matrix import H2Matrix
from .hmatrix import HMatrix
from .hodlr import HODLRMatrix, build_hodlr, hodlr_from_h2
from .hss import build_hss
from .linear_operator import LinearOperator, ShiftedLinearOperator, as_linear_operator

__all__ = [
    "BasisTree",
    "H2Matrix",
    "HMatrix",
    "HODLRMatrix",
    "build_hodlr",
    "hodlr_from_h2",
    "build_hss",
    "aca_low_rank",
    "LinearOperator",
    "ShiftedLinearOperator",
    "as_linear_operator",
]

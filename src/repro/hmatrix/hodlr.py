"""HODLR (hierarchically off-diagonal low-rank) matrices.

HODLR is the simplest weak-admissibility format: at every level of the cluster
tree the two off-diagonal sibling blocks are stored in (non-nested) low-rank
form and the diagonal leaf blocks are dense.  The paper uses HODLR (as
implemented in STRUMPACK) as one of the weak-admissibility comparators for the
frontal-matrix memory study (Fig. 6b), and the H2Opus top-down construction
internally builds a HODLR-like intermediate whose ranks grow quickly for 3D
geometries — the root cause of its large sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..api.protocol import HierarchicalOperatorMixin
from ..linalg.low_rank import LowRankMatrix
from ..tree.cluster_tree import ClusterTree
from ..utils.deprecation import deprecated_entry_point
from .aca import aca_from_entry_function
from .h2matrix import H2Matrix

EntryFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class HODLRMatrix(HierarchicalOperatorMixin):
    """A HODLR matrix over a cluster tree (permuted ordering).

    Implements the :class:`~repro.api.protocol.HierarchicalOperator`
    protocol; the derived applies (including the exact transpose
    ``rmatvec``/``rmatmat`` and the block-RHS ``matmat``) come from the
    shared mixin.
    """

    format_name = "hodlr"

    tree: ClusterTree
    #: ``off_diagonal[(s, t)]`` holds the low-rank factorization of sibling block (s, t).
    off_diagonal: Dict[Tuple[int, int], LowRankMatrix] = field(default_factory=dict)
    #: ``diagonal[s]`` is the dense diagonal block of leaf cluster ``s``.
    diagonal: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.tree.num_points
        return (n, n)

    def _apply_permuted(self, x: np.ndarray, transpose: bool = False) -> np.ndarray:
        yp = np.zeros_like(x)
        for (s, t), lr in self.off_diagonal.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            cols = slice(self.tree.starts[t], self.tree.ends[t])
            if transpose:
                yp[cols] += lr.rmatvec(x[rows])
            else:
                yp[rows] += lr.matvec(x[cols])
        for s, block in self.diagonal.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            yp[rows] += (block.T if transpose else block) @ x[rows]
        return yp

    def to_dense(self, permuted: bool = False) -> np.ndarray:
        n = self.tree.num_points
        dense = np.zeros((n, n), dtype=np.float64)
        for (s, t), lr in self.off_diagonal.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = lr.to_dense()
        for s, block in self.diagonal.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[s] : self.tree.ends[s],
            ] = block
        if permuted:
            return dense
        return dense[np.ix_(self.tree.iperm, self.tree.iperm)]

    def _memory_components(self) -> Dict[str, int]:
        return {
            "low_rank": int(
                sum(lr.left.nbytes + lr.right.nbytes for lr in self.off_diagonal.values())
            ),
            "dense": int(sum(d.nbytes for d in self.diagonal.values())),
        }

    def rank_range(self) -> Tuple[int, int]:
        ranks = [lr.rank for lr in self.off_diagonal.values()]
        if not ranks:
            return (0, 0)
        return (int(min(ranks)), int(max(ranks)))

    def _block_counts(self) -> Tuple[int, int]:
        return (len(self.off_diagonal), len(self.diagonal))


def build_hodlr(
    tree: ClusterTree,
    entries: EntryFunction,
    tol: float = 1e-6,
    max_rank: int | None = None,
) -> HODLRMatrix:
    """Construct a HODLR matrix from an entry-evaluation function.

    Every off-diagonal sibling block is compressed independently with
    partial-pivoted ACA; diagonal leaf blocks are evaluated densely.  The entry
    function receives *permuted* index arrays (the HODLR matrix lives in the
    cluster-tree ordering, like all formats in this library).
    """
    hodlr = HODLRMatrix(tree=tree)
    for level in range(1, tree.num_levels):
        nodes = list(tree.nodes_at_level(level))
        for i in range(0, len(nodes), 2):
            s, t = nodes[i], nodes[i + 1]
            for a, b in ((s, t), (t, s)):
                rows = tree.index_set(a)
                cols = tree.index_set(b)
                u, v = aca_from_entry_function(
                    entries, rows, cols, tol=tol, max_rank=max_rank
                )
                hodlr.off_diagonal[(a, b)] = LowRankMatrix(u, v)
    for leaf in tree.leaves():
        rows = tree.index_set(leaf)
        hodlr.diagonal[leaf] = entries(rows, rows)
    return hodlr


def _hodlr_from_h2(h2: H2Matrix) -> HODLRMatrix:
    """Flatten a weak-admissibility (HSS) :class:`H2Matrix` into HODLR form.

    The sketching constructor run with
    :class:`~repro.tree.admissibility.WeakAdmissibility` produces nested bases
    on the HODLR partition; expanding every coupling block ``B_{s,t}`` with the
    explicit bases ``U_s B_{s,t} U_t^T`` yields the equivalent (non-nested)
    HODLR matrix.  This is the bridge between the paper's constructor and the
    HODLR factorization of :mod:`repro.solvers.hodlr_factor`: the loss of
    nestedness costs memory but buys a direct solve.

    This is the weak-partition (exact) path of the registered ``h2 -> hodlr``
    conversion of the :func:`repro.api.convert` registry; call
    ``convert(h2, "hodlr")``, which re-compresses with ACA instead when the
    source lives on a strong-admissibility partition.

    Raises :class:`ValueError` when the H2 matrix does not live on the weak
    partition (off-diagonal dense blocks or non-sibling coupling blocks).
    """
    tree = h2.tree
    hodlr = HODLRMatrix(tree=tree)
    for (s, t), block in h2.dense.items():
        if s != t:
            raise ValueError(
                f"dense off-diagonal block ({s}, {t}): matrix is not on the weak partition"
            )
        hodlr.diagonal[s] = np.array(block, dtype=np.float64)
    for (s, t), b in h2.coupling.items():
        if s == 0 or t == 0 or tree.parent(s) != tree.parent(t):
            raise ValueError(
                f"coupling block ({s}, {t}) is not a sibling pair: "
                "matrix is not on the weak partition"
            )
        left = h2.basis.explicit_basis(s) @ b
        right = h2.basis.explicit_basis(t)
        hodlr.off_diagonal[(s, t)] = LowRankMatrix(left, right)
    return hodlr


@deprecated_entry_point("repro.convert(h2, 'hodlr')")
def hodlr_from_h2(h2: H2Matrix) -> HODLRMatrix:
    """Deprecated alias of the ``h2 -> hodlr`` conversion.

    Use :func:`repro.api.convert` (``repro.convert(h2, "hodlr")``) instead;
    this shim forwards to the same implementation and will be removed in a
    future release.
    """
    return _hodlr_from_h2(h2)

"""HODLR (hierarchically off-diagonal low-rank) matrices.

HODLR is the simplest weak-admissibility format: at every level of the cluster
tree the two off-diagonal sibling blocks are stored in (non-nested) low-rank
form and the diagonal leaf blocks are dense.  The paper uses HODLR (as
implemented in STRUMPACK) as one of the weak-admissibility comparators for the
frontal-matrix memory study (Fig. 6b), and the H2Opus top-down construction
internally builds a HODLR-like intermediate whose ranks grow quickly for 3D
geometries — the root cause of its large sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..linalg.low_rank import LowRankMatrix
from ..tree.cluster_tree import ClusterTree
from .aca import aca_from_entry_function
from .h2matrix import H2Matrix

EntryFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class HODLRMatrix:
    """A HODLR matrix over a cluster tree (permuted ordering)."""

    tree: ClusterTree
    #: ``off_diagonal[(s, t)]`` holds the low-rank factorization of sibling block (s, t).
    off_diagonal: Dict[Tuple[int, int], LowRankMatrix] = field(default_factory=dict)
    #: ``diagonal[s]`` is the dense diagonal block of leaf cluster ``s``.
    diagonal: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.tree.num_points
        return (n, n)

    def matvec(self, x: np.ndarray, permuted: bool = False) -> np.ndarray:
        """Multiply by a vector or block of vectors."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[:, None]
        xp = x if permuted else x[self.tree.perm]
        yp = np.zeros_like(xp)
        for (s, t), lr in self.off_diagonal.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            cols = slice(self.tree.starts[t], self.tree.ends[t])
            yp[rows] += lr.matvec(xp[cols])
        for s, block in self.diagonal.items():
            rows = slice(self.tree.starts[s], self.tree.ends[s])
            yp[rows] += block @ xp[rows]
        y = yp if permuted else yp[self.tree.iperm]
        return y[:, 0] if single else y

    def to_dense(self, permuted: bool = False) -> np.ndarray:
        n = self.tree.num_points
        dense = np.zeros((n, n), dtype=np.float64)
        for (s, t), lr in self.off_diagonal.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[t] : self.tree.ends[t],
            ] = lr.to_dense()
        for s, block in self.diagonal.items():
            dense[
                self.tree.starts[s] : self.tree.ends[s],
                self.tree.starts[s] : self.tree.ends[s],
            ] = block
        if permuted:
            return dense
        return dense[np.ix_(self.tree.iperm, self.tree.iperm)]

    def memory_bytes(self) -> Dict[str, int]:
        low_rank = int(
            sum(lr.left.nbytes + lr.right.nbytes for lr in self.off_diagonal.values())
        )
        dense = int(sum(d.nbytes for d in self.diagonal.values()))
        return {"low_rank": low_rank, "dense": dense, "total": low_rank + dense}

    def rank_range(self) -> Tuple[int, int]:
        ranks = [lr.rank for lr in self.off_diagonal.values()]
        if not ranks:
            return (0, 0)
        return (int(min(ranks)), int(max(ranks)))

    def statistics(self) -> Dict[str, object]:
        lo, hi = self.rank_range()
        return {
            "n": self.tree.num_points,
            "rank_min": lo,
            "rank_max": hi,
            "memory_mb": self.memory_bytes()["total"] / (1024.0**2),
            "num_low_rank_blocks": len(self.off_diagonal),
        }


def build_hodlr(
    tree: ClusterTree,
    entries: EntryFunction,
    tol: float = 1e-6,
    max_rank: int | None = None,
) -> HODLRMatrix:
    """Construct a HODLR matrix from an entry-evaluation function.

    Every off-diagonal sibling block is compressed independently with
    partial-pivoted ACA; diagonal leaf blocks are evaluated densely.  The entry
    function receives *permuted* index arrays (the HODLR matrix lives in the
    cluster-tree ordering, like all formats in this library).
    """
    hodlr = HODLRMatrix(tree=tree)
    for level in range(1, tree.num_levels):
        nodes = list(tree.nodes_at_level(level))
        for i in range(0, len(nodes), 2):
            s, t = nodes[i], nodes[i + 1]
            for a, b in ((s, t), (t, s)):
                rows = tree.index_set(a)
                cols = tree.index_set(b)
                u, v = aca_from_entry_function(
                    entries, rows, cols, tol=tol, max_rank=max_rank
                )
                hodlr.off_diagonal[(a, b)] = LowRankMatrix(u, v)
    for leaf in tree.leaves():
        rows = tree.index_set(leaf)
        hodlr.diagonal[leaf] = entries(rows, rows)
    return hodlr


def hodlr_from_h2(h2: H2Matrix) -> HODLRMatrix:
    """Flatten a weak-admissibility (HSS) :class:`H2Matrix` into HODLR form.

    The sketching constructor run with
    :class:`~repro.tree.admissibility.WeakAdmissibility` produces nested bases
    on the HODLR partition; expanding every coupling block ``B_{s,t}`` with the
    explicit bases ``U_s B_{s,t} U_t^T`` yields the equivalent (non-nested)
    HODLR matrix.  This is the bridge between the paper's constructor and the
    HODLR factorization of :mod:`repro.solvers.hodlr_factor`: the loss of
    nestedness costs memory but buys a direct solve.

    Raises :class:`ValueError` when the H2 matrix does not live on the weak
    partition (off-diagonal dense blocks or non-sibling coupling blocks).
    """
    tree = h2.tree
    hodlr = HODLRMatrix(tree=tree)
    for (s, t), block in h2.dense.items():
        if s != t:
            raise ValueError(
                f"dense off-diagonal block ({s}, {t}): matrix is not on the weak partition"
            )
        hodlr.diagonal[s] = np.array(block, dtype=np.float64)
    for (s, t), b in h2.coupling.items():
        if s == 0 or t == 0 or tree.parent(s) != tree.parent(t):
            raise ValueError(
                f"coupling block ({s}, {t}) is not a sibling pair: "
                "matrix is not on the weak partition"
            )
        left = h2.basis.explicit_basis(s) @ b
        right = h2.basis.explicit_basis(t)
        hodlr.off_diagonal[(s, t)] = LowRankMatrix(left, right)
    return hodlr

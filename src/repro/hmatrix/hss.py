"""HSS construction as a special case of the bottom-up H2 constructor.

The paper's Algorithm 1 is an extension of the Martinsson (2011) randomized
HSS construction from weak to general admissibility.  Running the same
constructor with :class:`~repro.tree.admissibility.WeakAdmissibility` therefore
*is* a sketching-based HSS construction — the nested bases live on the HODLR
partition where every off-diagonal sibling block is admissible.  This module
provides a thin convenience wrapper used by the frontal-matrix memory
comparison (Fig. 6b), where the paper compares against STRUMPACK's HSS code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..tree.admissibility import WeakAdmissibility
from ..tree.block_partition import build_block_partition
from ..tree.cluster_tree import ClusterTree
from ..utils.deprecation import deprecated_entry_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.builder import ConstructionResult
    from ..sketching.entry_extractor import EntryExtractor
    from ..sketching.operators import SketchingOperator


def _build_hss(
    tree: ClusterTree,
    operator: "SketchingOperator",
    extractor: "EntryExtractor",
    tolerance: float = 1e-6,
    sample_block_size: int = 64,
    max_samples: int | None = None,
    backend: str = "vectorized",
    seed: int | np.random.Generator | None = None,
) -> "ConstructionResult":
    """Construct an HSS (weak-admissibility H2) matrix with the bottom-up algorithm.

    Parameters mirror :class:`repro.core.builder.H2Constructor`; the only
    difference is that the block partition is built with weak admissibility,
    so the resulting format is HSS.  Returns the full
    :class:`~repro.core.builder.ConstructionResult` (the ``matrix`` attribute
    holds the HSS matrix as an :class:`~repro.hmatrix.h2matrix.H2Matrix` on the
    weak partition).
    """
    from ..core.builder import ConstructionConfig, H2Constructor

    partition = build_block_partition(tree, WeakAdmissibility())
    config = ConstructionConfig(
        tolerance=tolerance,
        sample_block_size=sample_block_size,
        max_samples=max_samples,
        backend=backend,
    )
    constructor = H2Constructor(partition, operator, extractor, config=config, seed=seed)
    return constructor.construct()


@deprecated_entry_point("repro.compress(..., format='hss')")
def build_hss(
    tree: ClusterTree,
    operator: "SketchingOperator",
    extractor: "EntryExtractor",
    tolerance: float = 1e-6,
    sample_block_size: int = 64,
    max_samples: int | None = None,
    backend: str = "vectorized",
    seed: int | np.random.Generator | None = None,
) -> "ConstructionResult":
    """Deprecated alias of the HSS construction path.

    Use :func:`repro.api.compress` — ``repro.compress(points, kernel,
    format="hss")`` for the kernel case, or ``repro.compress(format="hss",
    tree=tree, operator=operator, extractor=extractor)`` for a black-box
    operator/extractor pair.  This shim forwards to the same implementation.
    """
    return _build_hss(
        tree,
        operator,
        extractor,
        tolerance=tolerance,
        sample_block_size=sample_block_size,
        max_samples=max_samples,
        backend=backend,
        seed=seed,
    )

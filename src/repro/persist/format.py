"""The ``REPROART`` binary container: header JSON + aligned raw buffers.

One artifact file holds one compressed operator:

* an 20-byte preamble — the magic ``b"REPROART"``, a ``uint32`` container
  version and a ``uint64`` header length;
* a UTF-8 JSON header carrying the format name, the per-format
  ``format_version``, format-specific metadata (key lists, scalars) and a
  buffer directory (name, dtype, shape, offset, byte count);
* the raw array buffers, each aligned to :data:`ALIGNMENT` bytes.

The layout is deliberately dumb so it is fast: arrays are written as their
contiguous bytes and read back as *views into a single* :class:`numpy.memmap`
— opening a multi-GB operator costs milliseconds and no copies, and the OS
pages block data in on first touch.  Buffer offsets in the directory are
relative to the (aligned) start of the data section, so the header length
never feeds back into the offsets it describes.

Writes are atomic: the file is assembled under a temporary name in the target
directory and :func:`os.replace`-d into place, so readers (and the
content-addressed :class:`~repro.persist.cache.ArtifactCache`) never observe a
half-written artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: File magic of every artifact.
MAGIC = b"REPROART"
#: Version of the container layout (preamble + header + buffer directory).
#: Independent of the per-format ``format_version`` carried in the header.
#: Version 2 adds a ``sha256`` hex digest to every buffer directory entry;
#: version-1 artifacts (no digests) remain readable, they just cannot be
#: checksum-verified.
CONTAINER_VERSION = 2
#: Buffer alignment in bytes — generous enough for any numpy dtype and for
#: cache-line/SIMD-friendly access through the memmap.
ALIGNMENT = 64

_PREAMBLE = struct.Struct("<8sIQ")


class ArtifactError(Exception):
    """Base error of the :mod:`repro.persist` subsystem."""


class ArtifactFormatError(ArtifactError):
    """The file is not a valid artifact (bad magic, corrupt header, bad bounds)."""


class ArtifactVersionError(ArtifactError):
    """The artifact was written by an incompatible container/format version."""


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def write_artifact(
    path: str | os.PathLike,
    format_name: str,
    format_version: int,
    meta: dict,
    buffers: Sequence[Tuple[str, np.ndarray]],
) -> Path:
    """Write one artifact atomically and return its path.

    ``buffers`` is an *ordered* sequence of ``(name, array)`` pairs; the order
    is preserved in the buffer directory, so serializers can rely on it to
    reconstruct insertion-ordered dictionaries exactly.
    """
    path = Path(path)
    directory: List[dict] = []
    arrays: List[Tuple[int, np.ndarray]] = []
    offset = 0
    for name, array in buffers:
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        directory.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
                "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
            }
        )
        arrays.append((offset, array))
        offset += array.nbytes

    header = {
        "container_version": CONTAINER_VERSION,
        "format": str(format_name),
        "format_version": int(format_version),
        "meta": meta,
        "buffers": directory,
    }
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(payload))

    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(_PREAMBLE.pack(MAGIC, CONTAINER_VERSION, len(payload)))
            fh.write(payload)
            fh.write(b"\0" * (data_start - _PREAMBLE.size - len(payload)))
            position = 0
            for buffer_offset, array in arrays:
                if buffer_offset > position:
                    fh.write(b"\0" * (buffer_offset - position))
                    position = buffer_offset
                fh.write(array.data)
                position += array.nbytes
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def read_artifact(
    path: str | os.PathLike, mmap: bool = True, verify: bool = False
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Read one artifact: ``(header, {buffer name -> array})``.

    With ``mmap=True`` (default) every returned array is a zero-copy
    read-only view into one :class:`numpy.memmap` over the file; with
    ``mmap=False`` the file is read into memory once (the views are still
    marked read-only for symmetry).  ``verify=True`` recomputes every
    buffer's SHA-256 against the digest stored in the directory (container
    version ≥ 2; version-1 entries without a digest are skipped) — this
    touches every byte, so it trades the memmap's lazy paging for integrity.
    Raises :class:`ArtifactFormatError` on anything malformed (including a
    checksum mismatch) and :class:`ArtifactVersionError` on a container
    written by a newer library.
    """
    path = Path(path)
    try:
        file_size = os.path.getsize(path)
        with open(path, "rb") as fh:
            preamble = fh.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise ArtifactFormatError(f"{path}: truncated artifact preamble")
            magic, container_version, header_length = _PREAMBLE.unpack(preamble)
            if magic != MAGIC:
                raise ArtifactFormatError(
                    f"{path}: not a repro artifact (bad magic {magic!r})"
                )
            if container_version > CONTAINER_VERSION:
                raise ArtifactVersionError(
                    f"{path}: container version {container_version} is newer "
                    f"than this library supports ({CONTAINER_VERSION})"
                )
            # Bounds-check before trusting header_length: a truncated or
            # bit-flipped preamble must fail typed, not allocate gigabytes or
            # hand json a short read.
            if _PREAMBLE.size + header_length > file_size:
                raise ArtifactFormatError(
                    f"{path}: header length {header_length} exceeds the file "
                    f"size {file_size} (truncated or corrupted artifact)"
                )
            payload = fh.read(header_length)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    if len(payload) != header_length:
        raise ArtifactFormatError(f"{path}: truncated artifact header")
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactFormatError(f"{path}: corrupted artifact header: {exc}") from exc
    for key in ("format", "format_version", "meta", "buffers"):
        if key not in header:
            raise ArtifactFormatError(f"{path}: artifact header missing {key!r}")

    data_start = _align(_PREAMBLE.size + header_length)
    if mmap:
        raw = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        raw = np.fromfile(path, dtype=np.uint8)
        raw.flags.writeable = False
    buffers: Dict[str, np.ndarray] = {}
    for entry in header["buffers"]:
        try:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
            offset = data_start + int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactFormatError(
                f"{path}: malformed buffer directory entry: {exc}"
            ) from exc
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if expected != nbytes:
            raise ArtifactFormatError(
                f"{path}: buffer {name!r} declares {nbytes} bytes but its "
                f"dtype/shape imply {expected}"
            )
        if offset < data_start or offset + nbytes > raw.size:
            raise ArtifactFormatError(
                f"{path}: buffer {name!r} exceeds the file bounds"
            )
        raw_bytes = raw[offset : offset + nbytes]
        if verify:
            digest = entry.get("sha256")
            if digest is not None:
                actual = hashlib.sha256(raw_bytes.tobytes()).hexdigest()
                if actual != digest:
                    raise ArtifactFormatError(
                        f"{path}: buffer {name!r} failed its checksum "
                        f"(stored {digest[:12]}…, computed {actual[:12]}…)"
                    )
        buffers[name] = raw_bytes.view(dtype).reshape(shape)
    return header, buffers

"""Content-addressed artifact cache: cache-aside persistence for operators.

The construction is the expensive step of the whole pipeline; the operator it
produces is a pure function of (geometry, kernel, tolerance, format, library
format version).  :class:`ArtifactCache` hashes exactly those ingredients
into a SHA-256 key and stores one artifact file per key, so any process that
asks for the same compression again loads it in milliseconds (zero-copy
memmap) instead of re-constructing — the same cache-aside discipline as a
Redis layer, but for operators, and consulted automatically by
:func:`repro.compress` / :class:`repro.Session` /
:class:`repro.GeometryContext` when a cache is configured (``cache_dir=`` or
the ``REPRO_CACHE_DIR`` environment variable).

Key ingredients (any change produces a different key, any irrelevant change —
backend, tracer, construction path — does not):

* the point coordinates (raw float64 bytes) and the cluster-tree leaf size;
* the admissibility descriptor (weak, or general with its ``eta``);
* the kernel *identity*: class qualname plus scalar hyperparameters,
  recursing through composite kernels;
* the construction tolerance, the requested format (``hss`` and ``h2`` hash
  differently even though both store an ``h2`` artifact), the registered
  ``format_version`` of the stored layout, the sketching seed and any extra
  sampling knobs the caller passes.

Entries are written atomically (temp file + rename) so concurrent readers
never see a torn artifact; eviction is LRU by file modification time against
an optional byte budget.  Hits/misses are counted both per cache instance and
in the process-wide :func:`repro.observe.metrics` registry
(``persist.cache.hits`` / ``persist.cache.misses``); loads run under a
``persist.load`` span when a tracer is supplied.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..kernels.base import KernelFunction
from ..observe.metrics import metrics
from ..utils.env import normalize_choice
from .format import ArtifactError
from .serializers import (
    admissibility_descriptor,
    format_version,
    load,
    registered_formats,
    save,
)

#: Formats that persist as another format's artifact (HSS is H2 on the weak
#: partition); the *requested* name still participates in the key.
_STORAGE_ALIASES = {"hss": "h2"}

#: File extension of cache entries.
ARTIFACT_SUFFIX = ".repro"


class ArtifactLockError(ArtifactError):
    """Timed out acquiring the cache directory lock."""


class _DirectoryLock:
    """Advisory file lock serialising writers of one cache directory.

    Acquisition is ``O_CREAT | O_EXCL`` (atomic on every POSIX filesystem and
    on Windows) with exponential backoff from 1 ms up to 50 ms per attempt;
    a lock file older than ``stale_seconds`` is presumed orphaned (writer
    crashed between create and unlink) and stolen.  Readers never take the
    lock — artifact writes are atomic renames, so ``get`` stays lock-free.
    """

    def __init__(
        self,
        directory: Path,
        timeout: float = 10.0,
        stale_seconds: float = 30.0,
    ):
        self.path = directory / ".repro-cache.lock"
        self.timeout = float(timeout)
        self.stale_seconds = float(stale_seconds)
        self._held = False

    def __enter__(self) -> "_DirectoryLock":
        delay = 0.001
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat: retry now
                if age > self.stale_seconds:
                    # Orphaned lock (writer died): steal it.  The unlink may
                    # race with another staleness check — both proceed to a
                    # fresh O_CREAT|O_EXCL attempt, only one wins.
                    try:
                        self.path.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    raise ArtifactLockError(
                        f"timed out after {self.timeout:.1f}s waiting for "
                        f"{self.path} (held by pid "
                        f"{self._holder_pid() or 'unknown'})"
                    )
                time.sleep(delay)
                delay = min(delay * 2, 0.05)
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                self._held = True
                return self

    def __exit__(self, *exc: object) -> None:
        if self._held:
            self._held = False
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - stolen as stale meanwhile
                pass

    def _holder_pid(self) -> Optional[str]:
        try:
            return self.path.read_text().strip() or None
        except OSError:  # pragma: no cover - released meanwhile
            return None


def kernel_descriptor(kernel: KernelFunction) -> dict:
    """JSON identity of a kernel: class qualname + scalar hyperparameters.

    Recurses through composite kernels (``ScaledKernel.kernel``,
    ``SumKernel.kernels``) so two compositions with identical parameter
    dictionaries but different component classes hash differently.
    """
    descriptor: dict = {
        "class": f"{type(kernel).__module__}.{type(kernel).__qualname__}"
    }
    params = kernel.hyperparameters() if hasattr(kernel, "hyperparameters") else {}
    descriptor["params"] = {
        str(name): float(value) for name, value in sorted(params.items())
    }
    inner = getattr(kernel, "kernel", None)
    if isinstance(inner, KernelFunction):
        descriptor["inner"] = kernel_descriptor(inner)
    components = getattr(kernel, "kernels", None)
    if isinstance(components, (tuple, list)):
        descriptor["components"] = [
            kernel_descriptor(component)
            for component in components
            if isinstance(component, KernelFunction)
        ]
    return descriptor


class ArtifactCache:
    """A directory of operator artifacts addressed by construction content.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) on first use.
    max_bytes:
        Optional byte budget.  After every :meth:`put` the least-recently-used
        entries (by file mtime) are evicted until the cache fits; ``None``
        (default) never evicts.
    mmap:
        Whether :meth:`get` loads entries as zero-copy memmap views
        (default) or materialised in-memory copies.
    verify:
        When ``True``, every :meth:`get` recomputes the stored per-buffer
        SHA-256 digests before trusting an entry (container version ≥ 2).
        Costs a full read of the artifact, so it is off by default; the
        façade turns it on per call when a
        :class:`~repro.resilience.RecoveryPolicy` is installed.
    lock_timeout:
        Seconds :meth:`put`/:meth:`clear` wait for the cache directory lock
        (concurrent writers back off exponentially; a lock older than 30 s
        is presumed orphaned and stolen).  Timeout raises
        :class:`ArtifactLockError`.

    Thread-safety: the ``_DirectoryLock`` only serializes *cross-process*
    writers; in-process LRU bookkeeping (hit/miss/eviction counters, the
    mtime refresh of :meth:`get`, the eviction scan of :meth:`put`) is
    additionally serialized by a per-instance :class:`threading.RLock`, so
    one cache instance can be shared by the serving layer's worker threads.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
        mmap: bool = True,
        verify: bool = False,
        lock_timeout: float = 10.0,
    ):
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self.mmap = bool(mmap)
        self.verify = bool(verify)
        self.lock_timeout = float(lock_timeout)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # In-process counterpart of the cross-process _DirectoryLock:
        # serializes counter/index mutation across worker threads sharing
        # this instance (reentrant — put() takes it around _enforce_budget).
        self._mutex = threading.RLock()

    def _lock(self) -> _DirectoryLock:
        return _DirectoryLock(self.directory, timeout=self.lock_timeout)

    # ----------------------------------------------------------------- keying
    def key(
        self,
        points: np.ndarray,
        kernel: KernelFunction,
        *,
        tol: float,
        format: str = "h2",
        leaf_size: int = 64,
        admissibility: object | None = None,
        seed: int | None = None,
        extra: Optional[dict] = None,
    ) -> str:
        """The SHA-256 content key of one compression request.

        ``extra`` carries any further construction knobs that change the
        result (sampling block size, rank caps, ...); it must be
        JSON-serializable.  Raises :class:`ArtifactError` for formats without
        a registered serializer or admissibilities without a descriptor.
        """
        fmt = normalize_choice(format)
        stored = _STORAGE_ALIASES.get(fmt, fmt)
        if stored not in registered_formats():
            raise ArtifactError(
                f"format {format!r} has no registered persist serializer; "
                f"registered: {registered_formats()}"
            )
        pts = np.ascontiguousarray(
            np.atleast_2d(np.asarray(points, dtype=np.float64))
        )
        digest = hashlib.sha256()
        digest.update(b"repro.persist.key.v1\0")
        digest.update(str(pts.shape).encode("ascii"))
        digest.update(pts.tobytes())
        payload = {
            "leaf_size": int(leaf_size),
            "admissibility": (
                admissibility_descriptor(admissibility)
                if admissibility is not None
                else None
            ),
            "kernel": kernel_descriptor(kernel),
            "tol": float(tol),
            "format": fmt,
            "format_version": format_version(stored),
            "seed": None if seed is None else int(seed),
            "extra": extra or {},
        }
        digest.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        """Artifact path of ``key`` (whether or not the entry exists)."""
        return self.directory / f"{key}{ARTIFACT_SUFFIX}"

    # ---------------------------------------------------------------- get/put
    def get(
        self,
        key: str,
        tracer: object | None = None,
        on_corruption: str = "evict",
        verify: bool | None = None,
    ):
        """The cached operator for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU timestamp.  ``on_corruption``
        decides what a corrupted / version-mismatched entry does:

        ``"evict"``
            (default) drop the entry and count a miss — the caller rebuilds
            and overwrites it;
        ``"warn"``
            evict *and* announce the corruption through the
            ``repro.resilience`` structured logger;
        ``"raise"``
            raise :class:`~repro.resilience.ArtifactIntegrityError` (the
            strict-mode behaviour: nothing is papered over).

        ``verify`` overrides the instance's checksum-verification default
        for this call.
        """
        if on_corruption not in ("evict", "warn", "raise"):
            raise ValueError(
                f"on_corruption must be 'evict', 'warn' or 'raise', "
                f"not {on_corruption!r}"
            )
        check = self.verify if verify is None else bool(verify)
        path = self.path_for(key)
        registry = metrics()
        if path.exists():
            try:
                if tracer is not None and getattr(tracer, "enabled", False):
                    with tracer.span("persist.load", category="persist", key=key):
                        operator = load(path, mmap=self.mmap, verify=check)
                else:
                    operator = load(path, mmap=self.mmap, verify=check)
            except ArtifactError as exc:
                if on_corruption == "raise":
                    from ..resilience.errors import ArtifactIntegrityError

                    raise ArtifactIntegrityError(
                        f"cache entry {key} is corrupted: {exc}",
                        stage="persist.get",
                        context={"key": key, "path": str(path)},
                    ) from exc
                if on_corruption == "warn":
                    from ..resilience.policy import resilience_adapter

                    resilience_adapter().warn(
                        "artifact-corrupted", key=key, error=str(exc)
                    )
                # A torn/stale entry must not poison the cache: drop it and
                # report a miss so the caller reconstructs.
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - race with other process
                    pass
            else:
                with self._mutex:
                    self.hits += 1
                    now = time.time()
                    try:
                        os.utime(path, (now, now))
                    except OSError:  # pragma: no cover - evicted meanwhile
                        pass
                registry.counter("persist.cache.hits").inc()
                # Loaded operators report into the memory ledger like freshly
                # constructed ones (memmapped views still count their bytes).
                from ..observe.memory import (
                    categorize_operator_bytes,
                    memory_ledger,
                )

                if hasattr(operator, "memory_bytes"):
                    memory_ledger().track(
                        operator,
                        categorize_operator_bytes(operator.memory_bytes()),
                    )
                return operator
        with self._mutex:
            self.misses += 1
        registry.counter("persist.cache.misses").inc()
        return None

    def put(self, key: str, operator: object) -> Path:
        """Store ``operator`` under ``key`` (atomic write), evict over budget.

        Writers of the same cache directory are serialised by an advisory
        file lock with exponential backoff, so concurrent processes sharing
        one cache cannot interleave eviction scans with each other's writes.
        """
        with self._mutex, self._lock():
            path = save(operator, self.path_for(key))
            self._enforce_budget()
        self._account_bytes()
        return path

    def get_or_build(
        self,
        key: str,
        builder: Callable[[], object],
        tracer: object | None = None,
    ):
        """The cached operator for ``key``, building and storing it on a miss."""
        operator = self.get(key, tracer=tracer)
        if operator is None:
            operator = builder()
            self.put(key, operator)
        return operator

    # -------------------------------------------------------------- lifecycle
    def _entries(self):
        return sorted(
            (p for p in self.directory.glob(f"*{ARTIFACT_SUFFIX}") if p.is_file()),
            key=lambda p: p.stat().st_mtime,
        )

    def _enforce_budget(self) -> None:
        if self.max_bytes is None:
            return
        entries = self._entries()
        total = sum(p.stat().st_size for p in entries)
        for path in entries:  # oldest mtime first — LRU
            if total <= self.max_bytes:
                break
            size = path.stat().st_size
            try:
                path.unlink()
            except OSError:  # pragma: no cover - race with other process
                continue
            total -= size
            with self._mutex:
                self.evictions += 1

    def clear(self) -> None:
        """Delete every cache entry."""
        with self._mutex, self._lock():
            for path in self._entries():
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - race with other process
                    pass
        self._account_bytes()

    def _account_bytes(self) -> None:
        """Report the cache's on-disk occupancy into the memory ledger."""
        from ..observe.memory import memory_ledger

        memory_ledger().account(
            f"ArtifactCache:{self.directory}", {"cache": self.size_bytes()}
        )

    # ------------------------------------------------------------- reporting
    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entries())

    def statistics(self) -> Dict[str, object]:
        with self._mutex:
            entries = self._entries()
            return {
                "directory": str(self.directory),
                "entries": len(entries),
                "bytes": sum(p.stat().st_size for p in entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        stats = self.statistics()
        return (
            f"ArtifactCache({stats['directory']!r}, entries={stats['entries']}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def default_cache(mmap: bool = True) -> Optional[ArtifactCache]:
    """The environment-configured cache (``REPRO_CACHE_DIR``), or ``None``.

    The path value is stripped but never casefolded (paths are
    case-sensitive); unset or blank means caching stays off.
    """
    from ..utils.env import env_path

    directory = env_path("REPRO_CACHE_DIR")
    if directory is None:
        return None
    return ArtifactCache(directory, mmap=mmap)

"""Per-format (de)serialization of hierarchical operators.

Each registered format contributes a *pack* function (operator → header
metadata + ordered raw buffers) and an *unpack* function (metadata + buffers →
operator), plus a ``format_version`` bumped whenever its layout changes.
:func:`save` dispatches on the operator's ``format_name``; :func:`load`
dispatches on the format name recorded in the artifact header and rejects
version mismatches with :class:`~repro.persist.format.ArtifactVersionError`.

Round trips are *exact*: buffers are raw float64/int64 bytes, dictionary key
orders are preserved through explicit key lists in the metadata, and loaded
arrays are zero-copy read-only views into the artifact's memmap (the formats
only ever read their block data during applies).  ``load(path).to_dense()``
is bitwise-equal to the saved operator's ``to_dense()``.

Third-party formats register through :func:`register_format` — the same
extension discipline as :func:`repro.backends.register` and
:func:`repro.api.register_conversion`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Tuple

import numpy as np

from ..hmatrix.basis_tree import BasisTree
from ..hmatrix.h2matrix import H2Matrix
from ..hmatrix.hmatrix import HMatrix
from ..hmatrix.hodlr import HODLRMatrix
from ..linalg.low_rank import LowRankMatrix
from ..tree.admissibility import (
    AdmissibilityCondition,
    GeneralAdmissibility,
    WeakAdmissibility,
)
from ..tree.block_partition import BlockPartition
from ..tree.cluster_tree import ClusterTree
from .format import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    read_artifact,
    write_artifact,
)

Buffers = List[Tuple[str, np.ndarray]]


class _FormatSpec(NamedTuple):
    version: int
    pack: Callable[[object], Tuple[dict, Buffers]]
    unpack: Callable[[dict, Dict[str, np.ndarray]], object]


#: ``format_name -> (format_version, pack, unpack)``.
_FORMATS: Dict[str, _FormatSpec] = {}


def register_format(
    name: str,
    version: int,
    pack: Callable[[object], Tuple[dict, Buffers]],
    unpack: Callable[[dict, Dict[str, np.ndarray]], object],
    overwrite: bool = False,
) -> None:
    """Register a persistable operator format.

    ``pack(op)`` returns ``(meta, buffers)`` — a JSON-serializable metadata
    dict and an ordered list of ``(name, array)`` pairs; ``unpack(meta,
    buffers)`` reconstructs the operator from them.  Bump ``version`` whenever
    the layout changes; :func:`load` refuses artifacts whose recorded version
    differs from the registered one.
    """
    key = name.lower()
    if not overwrite and key in _FORMATS:
        raise ValueError(
            f"persist format {key!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    _FORMATS[key] = _FormatSpec(int(version), pack, unpack)


def registered_formats() -> Tuple[str, ...]:
    """Sorted names of the formats :func:`save`/:func:`load` understand."""
    return tuple(sorted(_FORMATS))


def format_version(name: str) -> int:
    """The current ``format_version`` of a registered format."""
    spec = _FORMATS.get(name.lower())
    if spec is None:
        raise ArtifactError(
            f"unknown persist format {name!r}; registered: {registered_formats()}"
        )
    return spec.version


def save(op: object, path: str | os.PathLike) -> Path:
    """Write ``op`` to ``path`` as a versioned artifact and return the path."""
    name = getattr(op, "format_name", None)
    spec = _FORMATS.get(name.lower()) if isinstance(name, str) else None
    if spec is None:
        raise ArtifactError(
            f"cannot persist {type(op).__name__} (format_name={name!r}); "
            f"registered formats: {registered_formats()} — add one with "
            "repro.persist.register_format"
        )
    meta, buffers = spec.pack(op)
    return write_artifact(path, name, spec.version, meta, buffers)


def load(path: str | os.PathLike, mmap: bool = True, verify: bool = False):
    """Load the operator stored at ``path``.

    ``mmap=True`` (default) maps the block data zero-copy, so a multi-GB
    operator opens in milliseconds and pages in lazily.  ``verify=True``
    checks every buffer's stored SHA-256 before reconstruction (see
    :func:`~repro.persist.format.read_artifact`).  Raises
    :class:`~repro.persist.format.ArtifactVersionError` when the artifact's
    recorded format version differs from the registered one, and
    :class:`~repro.persist.format.ArtifactFormatError` on unknown formats or
    corrupted files.
    """
    header, buffers = read_artifact(path, mmap=mmap, verify=verify)
    name = str(header["format"]).lower()
    spec = _FORMATS.get(name)
    if spec is None:
        raise ArtifactFormatError(
            f"{path}: artifact stores unregistered format {name!r}; "
            f"registered: {registered_formats()}"
        )
    recorded = int(header["format_version"])
    if recorded != spec.version:
        raise ArtifactVersionError(
            f"{path}: format {name!r} artifact is version {recorded}, this "
            f"library reads version {spec.version}"
        )
    return spec.unpack(header["meta"], buffers)


# -------------------------------------------------------------- shared pieces
def _pack_tree(tree: ClusterTree, meta: dict, buffers: Buffers) -> None:
    meta["tree"] = {"depth": int(tree.depth), "leaf_size": int(tree.leaf_size)}
    buffers.extend(
        [
            ("tree/points", tree.points),
            ("tree/perm", tree.perm),
            ("tree/iperm", tree.iperm),
            ("tree/starts", tree.starts),
            ("tree/ends", tree.ends),
            ("tree/box_low", tree.box_low),
            ("tree/box_high", tree.box_high),
        ]
    )


def _unpack_tree(meta: dict, buffers: Dict[str, np.ndarray]) -> ClusterTree:
    info = meta["tree"]
    return ClusterTree(
        points=buffers["tree/points"],
        perm=buffers["tree/perm"],
        iperm=buffers["tree/iperm"],
        starts=buffers["tree/starts"],
        ends=buffers["tree/ends"],
        box_low=buffers["tree/box_low"],
        box_high=buffers["tree/box_high"],
        depth=int(info["depth"]),
        leaf_size=int(info["leaf_size"]),
    )


def admissibility_descriptor(admissibility: AdmissibilityCondition) -> dict:
    """JSON descriptor of an admissibility condition (also the cache-key form)."""
    if isinstance(admissibility, WeakAdmissibility):
        return {"type": "weak"}
    if isinstance(admissibility, GeneralAdmissibility):
        return {"type": "general", "eta": float(admissibility.eta)}
    raise ArtifactError(
        f"cannot serialize admissibility {type(admissibility).__name__}; "
        "only GeneralAdmissibility/WeakAdmissibility artifacts are supported"
    )


def _admissibility_from(descriptor: dict) -> AdmissibilityCondition:
    kind = descriptor.get("type")
    if kind == "weak":
        return WeakAdmissibility()
    if kind == "general":
        return GeneralAdmissibility(eta=float(descriptor["eta"]))
    raise ArtifactFormatError(f"unknown admissibility descriptor {descriptor!r}")


def _pack_partition(
    partition: BlockPartition, meta: dict, buffers: Buffers
) -> None:
    def flatten(rows: List[List[int]]) -> Tuple[np.ndarray, np.ndarray]:
        flat = np.fromiter(
            (t for row in rows for t in row), dtype=np.int64,
            count=sum(len(row) for row in rows),
        )
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(row) for row in rows], out=offsets[1:])
        return flat, offsets

    far_flat, far_offsets = flatten(partition.far_field)
    near_flat, near_offsets = flatten(partition.near_field)
    meta["partition"] = {
        "admissibility": admissibility_descriptor(partition.admissibility)
    }
    buffers.extend(
        [
            ("partition/far_flat", far_flat),
            ("partition/far_offsets", far_offsets),
            ("partition/near_flat", near_flat),
            ("partition/near_offsets", near_offsets),
        ]
    )


def _unpack_partition(
    tree: ClusterTree, meta: dict, buffers: Dict[str, np.ndarray]
) -> BlockPartition:
    def unflatten(flat: np.ndarray, offsets: np.ndarray) -> List[List[int]]:
        return [
            flat[offsets[i] : offsets[i + 1]].tolist()
            for i in range(offsets.shape[0] - 1)
        ]

    return BlockPartition(
        tree=tree,
        admissibility=_admissibility_from(meta["partition"]["admissibility"]),
        far_field=unflatten(
            buffers["partition/far_flat"], buffers["partition/far_offsets"]
        ),
        near_field=unflatten(
            buffers["partition/near_flat"], buffers["partition/near_offsets"]
        ),
    )


def _pack_block_dict(
    blocks: Dict[Tuple[int, int], np.ndarray], prefix: str, meta: dict,
    buffers: Buffers,
) -> None:
    meta[f"{prefix}_keys"] = [[int(s), int(t)] for s, t in blocks]
    buffers.extend(
        (f"{prefix}/{i}", array) for i, array in enumerate(blocks.values())
    )


def _unpack_block_dict(
    prefix: str, meta: dict, buffers: Dict[str, np.ndarray]
) -> Dict[Tuple[int, int], np.ndarray]:
    return {
        (int(s), int(t)): buffers[f"{prefix}/{i}"]
        for i, (s, t) in enumerate(meta[f"{prefix}_keys"])
    }


def _pack_low_rank_dict(
    blocks: Dict[Tuple[int, int], LowRankMatrix], prefix: str, meta: dict,
    buffers: Buffers,
) -> None:
    meta[f"{prefix}_keys"] = [[int(s), int(t)] for s, t in blocks]
    for i, lr in enumerate(blocks.values()):
        buffers.append((f"{prefix}_left/{i}", lr.left))
        buffers.append((f"{prefix}_right/{i}", lr.right))


def _unpack_low_rank_dict(
    prefix: str, meta: dict, buffers: Dict[str, np.ndarray]
) -> Dict[Tuple[int, int], LowRankMatrix]:
    return {
        (int(s), int(t)): LowRankMatrix(
            buffers[f"{prefix}_left/{i}"], buffers[f"{prefix}_right/{i}"]
        )
        for i, (s, t) in enumerate(meta[f"{prefix}_keys"])
    }


# ------------------------------------------------------------------ H2 format
def _pack_h2(h2: H2Matrix) -> Tuple[dict, Buffers]:
    meta: dict = {"symmetric": bool(h2.symmetric)}
    buffers: Buffers = []
    _pack_tree(h2.tree, meta, buffers)
    _pack_partition(h2.partition, meta, buffers)
    basis = h2.basis
    meta["basis"] = {
        "leaf_nodes": [int(node) for node in basis.leaf_bases],
        "transfer_nodes": [int(node) for node in basis.transfers],
        "ranks": [[int(node), int(rank)] for node, rank in basis.ranks.items()],
    }
    buffers.extend(
        (f"leaf_basis/{i}", array)
        for i, array in enumerate(basis.leaf_bases.values())
    )
    buffers.extend(
        (f"transfer/{i}", array) for i, array in enumerate(basis.transfers.values())
    )
    _pack_block_dict(h2.coupling, "coupling", meta, buffers)
    _pack_block_dict(h2.dense, "dense", meta, buffers)
    return meta, buffers


def _unpack_h2(meta: dict, buffers: Dict[str, np.ndarray]) -> H2Matrix:
    tree = _unpack_tree(meta, buffers)
    partition = _unpack_partition(tree, meta, buffers)
    basis_meta = meta["basis"]
    basis = BasisTree(
        tree=tree,
        leaf_bases={
            int(node): buffers[f"leaf_basis/{i}"]
            for i, node in enumerate(basis_meta["leaf_nodes"])
        },
        transfers={
            int(node): buffers[f"transfer/{i}"]
            for i, node in enumerate(basis_meta["transfer_nodes"])
        },
        ranks={int(node): int(rank) for node, rank in basis_meta["ranks"]},
    )
    return H2Matrix(
        tree=tree,
        partition=partition,
        basis=basis,
        coupling=_unpack_block_dict("coupling", meta, buffers),
        dense=_unpack_block_dict("dense", meta, buffers),
        symmetric=bool(meta["symmetric"]),
    )


# --------------------------------------------------------------- HODLR format
def _pack_hodlr(hodlr: HODLRMatrix) -> Tuple[dict, Buffers]:
    meta: dict = {}
    buffers: Buffers = []
    _pack_tree(hodlr.tree, meta, buffers)
    _pack_low_rank_dict(hodlr.off_diagonal, "off_diagonal", meta, buffers)
    meta["diagonal_nodes"] = [int(node) for node in hodlr.diagonal]
    buffers.extend(
        (f"diagonal/{i}", array)
        for i, array in enumerate(hodlr.diagonal.values())
    )
    return meta, buffers


def _unpack_hodlr(meta: dict, buffers: Dict[str, np.ndarray]) -> HODLRMatrix:
    tree = _unpack_tree(meta, buffers)
    return HODLRMatrix(
        tree=tree,
        off_diagonal=_unpack_low_rank_dict("off_diagonal", meta, buffers),
        diagonal={
            int(node): buffers[f"diagonal/{i}"]
            for i, node in enumerate(meta["diagonal_nodes"])
        },
    )


# ------------------------------------------------------------- HMatrix format
def _pack_hmatrix(h: HMatrix) -> Tuple[dict, Buffers]:
    meta: dict = {}
    buffers: Buffers = []
    _pack_tree(h.tree, meta, buffers)
    _pack_partition(h.partition, meta, buffers)
    _pack_low_rank_dict(h.low_rank, "low_rank", meta, buffers)
    _pack_block_dict(h.dense, "dense", meta, buffers)
    return meta, buffers


def _unpack_hmatrix(meta: dict, buffers: Dict[str, np.ndarray]) -> HMatrix:
    tree = _unpack_tree(meta, buffers)
    return HMatrix(
        tree=tree,
        partition=_unpack_partition(tree, meta, buffers),
        low_rank=_unpack_low_rank_dict("low_rank", meta, buffers),
        dense=_unpack_block_dict("dense", meta, buffers),
    )


register_format("h2", 1, _pack_h2, _unpack_h2)
register_format("hodlr", 1, _pack_hodlr, _unpack_hodlr)
register_format("hmatrix", 1, _pack_hmatrix, _unpack_hmatrix)

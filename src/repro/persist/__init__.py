"""Persistent operator artifacts: versioned save/load + content-addressed cache.

The construction is expensive; the operator it produces is reusable across
processes.  This package makes it survive:

* :mod:`repro.persist.format` — the ``REPROART`` binary container (header
  JSON + 64-byte-aligned raw buffers, mmap-able for zero-copy loads);
* :mod:`repro.persist.serializers` — exact round-trip (de)serialization of
  the H2/HSS, HODLR and H formats behind a :func:`register_format` registry;
* :mod:`repro.persist.cache` — :class:`ArtifactCache`, content-addressed by
  (geometry, kernel identity, tolerance, format, format version, seed), the
  cache-aside layer :func:`repro.compress` / :class:`repro.Session` /
  :class:`repro.GeometryContext` consult before constructing.

Quick use::

    op = repro.compress(points, kernel, tol=1e-6)
    op.save("operator.repro")                  # mixin convenience
    same = repro.persist.load("operator.repro")  # zero-copy memmap views

    # opt-in caching: cold run constructs + stores, warm runs load
    op = repro.compress(points, kernel, tol=1e-6, cache_dir="~/.cache/repro")
"""

from .cache import ArtifactCache, default_cache, kernel_descriptor
from .format import (
    ALIGNMENT,
    CONTAINER_VERSION,
    MAGIC,
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    read_artifact,
    write_artifact,
)
from .serializers import (
    format_version,
    load,
    register_format,
    registered_formats,
    save,
)

#: Collision-safe aliases re-exported at the ``repro`` top level (plain
#: ``load``/``save`` stay local to this package).
save_operator = save
load_operator = load

__all__ = [
    "ALIGNMENT",
    "ArtifactCache",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactVersionError",
    "CONTAINER_VERSION",
    "MAGIC",
    "default_cache",
    "format_version",
    "kernel_descriptor",
    "load",
    "load_operator",
    "read_artifact",
    "register_format",
    "registered_formats",
    "save",
    "save_operator",
    "write_artifact",
]

"""Operator persistence and the content-addressed artifact cache.

The construction is the expensive step of the pipeline; the operator it
produces is a pure function of (geometry, kernel, tolerance, format, seed).
:mod:`repro.persist` makes that investment durable:

1. save any compressed operator to a versioned ``REPROART`` artifact file
   (``op.save(path)``) and load it back bitwise-identically — zero-copy, the
   block data stays memmapped and pages in lazily;
2. opt into the content-addressed :class:`repro.ArtifactCache` with
   ``cache_dir=`` (or the ``REPRO_CACHE_DIR`` environment variable): the
   first process to request a compression constructs and stores it, every
   later identical request — across processes and sessions — loads it in
   milliseconds;
3. anything that changes the result (tolerance, kernel hyperparameters,
   seed, leaf size, format) changes the key, so stale hits cannot happen.

Run with:  python examples/artifact_cache.py [N]
"""

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro


def main(n: int = 4096) -> None:
    print(f"== Operator persistence & artifact cache (N={n}) ==")
    points = repro.uniform_cube_points(n, dim=3, seed=0)
    kernel = repro.ExponentialKernel(length_scale=0.2)

    with tempfile.TemporaryDirectory(prefix="repro-artifacts-") as tmp:
        # --- explicit save/load -----------------------------------------
        h2 = repro.compress(points, kernel, tol=1e-6, seed=1)
        path = Path(tmp) / "operator.repro"
        start = time.perf_counter()
        h2.save(path)
        save_s = time.perf_counter() - start
        start = time.perf_counter()
        loaded = repro.load_operator(path)
        load_s = time.perf_counter() - start
        exact = np.array_equal(loaded.to_dense(), h2.to_dense())
        print(
            f"save: {save_s:.3f}s ({path.stat().st_size / 2**20:.1f} MB), "
            f"zero-copy load: {load_s * 1e3:.1f}ms, bitwise round trip: {exact}"
        )

        # --- cache-aside compression ------------------------------------
        cache_dir = Path(tmp) / "cache"
        start = time.perf_counter()
        repro.compress(points, kernel, tol=1e-6, seed=1, cache_dir=cache_dir)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = repro.compress(points, kernel, tol=1e-6, seed=1, cache_dir=cache_dir)
        warm_s = time.perf_counter() - start
        print(
            f"cold compress (construct + store): {cold_s:.2f}s, "
            f"warm compress (cache hit): {warm_s * 1e3:.1f}ms "
            f"-> {cold_s / max(warm_s, 1e-9):.0f}x"
        )
        y = warm @ np.ones(n)
        print(f"warm operator matvec norm: {np.linalg.norm(y):.6g}")

        # A different tolerance (or kernel, or seed, ...) is a different key.
        cache = repro.ArtifactCache(cache_dir)
        repro.compress(points, kernel, tol=1e-4, seed=1, cache=cache)
        print(f"cache after a tol=1e-4 request: {cache.statistics()}")

        # Sessions share the same cache-aside path.  Session geometry defaults
        # to the weak (HSS) partition, a different key than the strong-H2
        # requests above: the first Session constructs and stores, a second
        # one (a later process in real use) loads the artifact.
        repro.Session(points, seed=1, cache_dir=cache_dir).compress(kernel, tol=1e-6)
        sess = repro.Session(points, seed=1, cache_dir=cache_dir)
        sess.compress(kernel, tol=1e-6)
        hits = sess.context.statistics.artifact_cache_hits
        print(
            f"second Session construction_path={sess.result.construction_path!r} "
            f"(artifact cache hits: {hits})"
        )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    main(size)

"""Guarded execution end-to-end: inject faults, watch the pipeline recover.

The resilience subsystem turns failures into policy.  This walkthrough runs
one compress → factor → solve pipeline three times:

1. **clean** — the reference answer, no resilience configured;
2. **chaos** — the deterministic fault injector breaks a packed launch *and*
   poisons a sketched sample block mid-construction, while the ``recover``
   policy retries from a restored RNG/sample-bank state.  The recovered
   operator acts **bit-identically** to the clean one;
3. **stagnation** — a stall-convergence fault caps CG far below convergence
   and the solve escalates through the ladder (CG → preconditioned CG →
   GMRES(m) → HODLR direct) until one rung delivers the requested tolerance.

A :class:`repro.SpanTracer` rides along so the recovery spans (category
``"resilience"``) show up in the console tree next to the construction
phases, and the process-wide metrics registry counts every retry, recovery
and escalation.

Run with:  python examples/resilient_pipeline.py [N]
"""

import sys

import numpy as np

from repro import (
    ExecutionPolicy,
    ExponentialKernel,
    Session,
    SpanTracer,
    uniform_cube_points,
)
from repro.observe import find_spans, metrics
from repro.resilience import RecoveryPolicy


def run(points, b, *, policy, label, factor=True):
    print(f"--- {label} " + "-" * max(0, 60 - len(label)))
    sess = Session(points, policy=policy, seed=2)
    result = sess.compress(ExponentialKernel(1.0), 1e-8, format="hss").result
    print(
        f"constructed via {result.construction_path!r}: "
        f"ranks {result.rank_range}, converged={result.converged}"
    )
    if factor:
        sess.factor(noise=1e-6)
    else:
        sess._shift = 1e-6  # same system, but leave CG unpreconditioned
    solve = sess.solve(b, tol=1e-8)
    print(
        f"solved with {solve.method!r}: {solve.iterations} iterations, "
        f"residual {solve.final_residual:.2e}, converged={solve.converged}"
    )
    return result, solve


def main(n: int = 2048) -> None:
    points = uniform_cube_points(n, dim=2, seed=11)
    b = np.random.default_rng(3).standard_normal(n)

    # 1. The clean reference.
    _, clean = run(points, b, policy=ExecutionPolicy(), label="clean")

    # 2. Chaos mode: break the packed sweep once and poison one sketched
    # sample block.  The recover policy retries both from restored state, so
    # the final solution is bitwise identical to the clean run.
    tracer = SpanTracer()
    chaos = ExecutionPolicy(
        tracer=tracer,
        recovery="recover",
        faults="fail-nth-launch:nth=1;nan-in-gemm-output:nth=2",
    )
    _, recovered = run(points, b, policy=chaos, label="chaos (injected faults)")
    assert np.array_equal(recovered.x, clean.x), "recovery must be bitwise"
    print("recovered solution is bit-identical to the clean run")
    print()
    print("recovery spans in the trace:")
    for span in find_spans(tracer, category="resilience"):
        print(f"  {span.name} (stage={span.attributes.get('stage', '?')})")

    # 3. Stagnation: cap CG at 3 iterations; the ladder escalates until a
    # preconditioned rung reaches tol.
    stalled = ExecutionPolicy(
        recovery=RecoveryPolicy(rung_maxiter=40),
        faults="stall-convergence:iters=3",
    )
    _, escalated = run(
        points, b, policy=stalled, label="stall-convergence", factor=False
    )
    ladder = escalated.extra.get("escalation", {})
    print(f"escalated from {escalated.extra.get('escalated_from')!r}; ladder rungs:")
    for rung in ladder.get("rungs", ()):
        print(
            f"  {rung['rung']:>6}: converged={rung['converged']} "
            f"in {rung['iterations']} iterations "
            f"(residual {rung['final_residual']:.2e})"
        )

    print()
    print("resilience counters:")
    for name, value in sorted(metrics().snapshot()["counters"].items()):
        if name.startswith("resilience."):
            print(f"  {name} = {value}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)

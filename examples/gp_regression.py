"""Gaussian-process regression end-to-end: fit, predict, sweep, sample.

The statistical workload the covariance benchmarks point at, composed from
every subsystem of the library:

1. draw noisy observations of a smooth function at scattered 2D points;
2. fit a Gaussian process through ``Session.gp`` — the covariance is compressed with
   the sketching constructor, its log-determinant comes from the HODLR
   factorization and the representer weights from factorization-preconditioned
   CG over the compiled batched apply plan;
3. select the kernel length scale and nugget by a grid sweep refined with
   Nelder–Mead — every sweep point re-uses the cached geometry of the
   :class:`repro.Session` (tree, partition, distances, frozen sample bank),
   which is what makes model selection affordable;
4. predict mean/uncertainty at held-out points and draw posterior samples.

Run with:  python examples/gp_regression.py [N]
"""

import sys

import numpy as np

from repro import ExponentialKernel, Session, gp_sweep_table, uniform_cube_points

NOISE_TRUE = 0.05


def target_function(points: np.ndarray) -> np.ndarray:
    """A smooth anisotropic test function on the unit square."""
    x, y = points[:, 0], points[:, 1]
    return np.sin(4.0 * x) * np.cos(3.0 * y) + 0.5 * x


def main(n: int = 2048) -> None:
    print(f"== Gaussian-process regression with N={n} training points ==")
    rng = np.random.default_rng(0)
    train = uniform_cube_points(n, dim=2, seed=1)
    y = target_function(train) + NOISE_TRUE * rng.standard_normal(n)

    # --- fit with model selection -----------------------------------------
    # A Session caches the geometry (tree, partition, distances, sample
    # bank); gp() hands the GP the same cached context every sweep point
    # re-uses.
    session = Session(train, seed=2)
    gp = session.gp(
        ExponentialKernel(length_scale=0.5),  # deliberately bad initial guess
        noise=0.5,
        tolerance=1e-7,
    )
    gp.fit(
        y,
        length_scales=[0.1, 0.25, 0.5],
        noises=[1e-3, 1e-2, 1e-1],
        optimize=True,
        max_optimizer_evals=15,
    )
    print()
    print(gp_sweep_table(gp.fit_reports_))
    print()
    print(
        f"selected: length_scale={gp.kernel.length_scale:.4f} "
        f"noise={gp.noise:.2e} log-likelihood={gp.log_marginal_likelihood_:.2f}"
    )
    print(f"geometry reuse: {gp.context.describe()}")

    # --- predict at held-out points ---------------------------------------
    test = uniform_cube_points(512, dim=2, seed=3)
    truth = target_function(test)
    mean, std = gp.predict(test, return_std=True)
    rmse = float(np.sqrt(np.mean((mean - truth) ** 2)))
    inside = float(np.mean(np.abs(mean - truth) <= 2.0 * std + 2.0 * NOISE_TRUE))
    print()
    print(f"held-out RMSE:            {rmse:.4f} (observation noise {NOISE_TRUE})")
    print(f"within 2 sigma of truth:  {100.0 * inside:.1f}%")

    # --- posterior samples -------------------------------------------------
    draws = gp.sample_posterior(test[:8], num_samples=5, seed=4)
    print()
    print("posterior samples at 8 held-out points (rows: points, cols: draws):")
    for row, m in zip(draws, mean[:8]):
        formatted = "  ".join(f"{value:+.3f}" for value in row)
        print(f"  mean {m:+.3f} | {formatted}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)

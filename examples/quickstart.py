"""Quickstart: compress a 3D covariance matrix into an H2 matrix.

This is the minimal end-to-end workflow of the library through the
:mod:`repro.api` façade:

1. generate a 3D point cloud;
2. hand points + kernel to :func:`repro.compress` — the cluster tree, the
   strong-admissibility block partition and the sketching operator/entry
   evaluator of Algorithm 1 are assembled behind the scenes;
3. use the resulting H2 operator: fast matvec, memory report, error check.

Every format (``h2``/``hss``/``hodlr``/``hmatrix``) returns an operator
implementing the same ``HierarchicalOperator`` protocol, so everything below
works unchanged with ``format="hss"`` etc.

Run with:  python examples/quickstart.py [N]
"""

import sys
import time

import numpy as np

import repro
from repro.diagnostics import construction_error


def main(n: int = 8192) -> None:
    print(f"== Quickstart: H2 compression of an exponential covariance matrix (N={n}) ==")

    # Three lines from points to a compressed hierarchical operator.
    points = repro.uniform_cube_points(n, dim=3, seed=0)
    kernel = repro.ExponentialKernel(length_scale=0.2)
    start = time.perf_counter()
    result = repro.compress(
        points, kernel, format="h2", tol=1e-6, seed=1, full_result=True
    )
    elapsed = time.perf_counter() - start
    h2 = result.matrix

    stats = h2.statistics()
    print(
        f"construction: {elapsed:.2f}s, {result.total_samples} samples, "
        f"ranks {stats['rank_min']}-{stats['rank_max']}, "
        f"Csp = {stats['sparsity_constant']}"
    )
    print(
        f"memory: {h2.total_memory_mb():.1f} MB "
        f"(dense would be {n * n * 8 / 2**20:.1f} MB)"
    )

    # Use the operator: compiled batched apply in the original point ordering.
    x = np.random.default_rng(2).standard_normal(n)
    y = h2 @ x
    print(f"matvec output norm: {np.linalg.norm(y):.6g}")

    operator = repro.KernelMatVecOperator(kernel, h2.tree.points)
    error = construction_error(h2, operator, num_iterations=8, seed=3)
    print(f"measured relative error vs the kernel operator: {error:.3e}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    main(size)

"""Quickstart: compress a 3D covariance matrix into an H2 matrix.

This is the minimal end-to-end workflow of the library:

1. generate a 3D point cloud and cluster it into a KD cluster tree;
2. build the strong-admissibility block partition (dual tree traversal);
3. hand the black-box sketching operator and the entry evaluator of the
   exponential covariance kernel to the bottom-up constructor (Algorithm 1);
4. use the resulting H2 matrix: fast matvec, memory report, error check.

Run with:  python examples/quickstart.py [N]
"""

import sys
import time

import numpy as np

from repro import (
    ClusterTree,
    ConstructionConfig,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    KernelEntryExtractor,
    KernelMatVecOperator,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import construction_error


def main(n: int = 8192) -> None:
    print(f"== Quickstart: H2 compression of an exponential covariance matrix (N={n}) ==")

    # 1. Geometry and cluster tree (leaf size 64, as in the paper).
    points = uniform_cube_points(n, dim=3, seed=0)
    tree = ClusterTree.build(points, leaf_size=64)
    print(f"cluster tree: {tree.describe()}")

    # 2. Block partition with the general admissibility condition (eta = 0.7).
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    stats = partition.statistics()
    print(
        f"partition: {stats['num_admissible_blocks']} admissible blocks, "
        f"{stats['num_inadmissible_blocks']} dense blocks, Csp = {stats['sparsity_constant']}"
    )

    # 3. Black-box operator (exact blocked kernel matvec) and entry evaluator.
    kernel = ExponentialKernel(length_scale=0.2)
    operator = KernelMatVecOperator(kernel, tree.points)
    extractor = KernelEntryExtractor(kernel, tree.points)

    config = ConstructionConfig(tolerance=1e-6, sample_block_size=64, backend="vectorized")
    start = time.perf_counter()
    result = H2Constructor(partition, operator, extractor, config, seed=1).construct()
    elapsed = time.perf_counter() - start
    h2 = result.matrix

    lo, hi = result.rank_range
    print(f"construction: {elapsed:.2f}s, {result.total_samples} samples, ranks {lo}-{hi}")
    print(
        f"memory: {h2.total_memory_mb():.1f} MB "
        f"(dense would be {n * n * 8 / 2**20:.1f} MB)"
    )

    # 4. Use the H2 matrix.
    x = np.random.default_rng(2).standard_normal(n)
    y = h2.matvec(x)  # original point ordering
    print(f"matvec output norm: {np.linalg.norm(y):.6g}")

    error = construction_error(h2, operator, num_iterations=8, seed=3)
    print(f"measured relative error vs the kernel operator: {error:.3e}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    main(size)

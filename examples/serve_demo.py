"""Serving walkthrough: the repro.serve async inference service end to end.

The compressed operator becomes a long-lived multi-tenant service:

1. register a model with the :class:`repro.serve.InferenceServer` (from an
   operator instance here; artifact paths, cache keys and points+kernel all
   work — see :meth:`repro.serve.ModelRegistry.register`);
2. fire a wave of concurrent posterior-solve and GP-predict clients — the
   :class:`~repro.serve.MicroBatcher` coalesces them into single block-RHS
   ``matmat``/block-solve launches, and every caller still gets exactly its
   own answer;
3. read the built-in telemetry: per-endpoint p50/p95/p99 latency histograms,
   batch-size distribution, health report;
4. serve the same API over HTTP (dependency-free asyncio adapter) and scrape
   the OpenMetrics ``/metrics`` endpoint like a Prometheus agent would.

Scale the wave with REPRO_SERVE_DEMO_CLIENTS (default 32).

Run with:  python examples/serve_demo.py [N]
"""

import asyncio
import json
import os
import sys
import time

import numpy as np

import repro
from repro.serve import InferenceServer, PredictRequest, SolveRequest, serve_http

NOISE = 1e-2
MODEL = "demo"


async def run_demo(n: int, clients: int) -> None:
    print(f"== repro.serve demo (N={n}, {clients} concurrent clients) ==")

    # --- build + register a model ---------------------------------------
    points = repro.uniform_cube_points(n, dim=3, seed=0)
    kernel = repro.ExponentialKernel(length_scale=0.2)
    operator = repro.compress(points, kernel, format="hss", tol=1e-6, seed=1)

    server = InferenceServer(max_batch=clients, max_wait_ms=2.0)
    server.register(MODEL, operator, noise=NOISE)
    server.registry.get(MODEL).factorization()  # warm the direct solver
    print(f"registered model {MODEL!r}: "
          f"{server.registry.get(MODEL).memory_bytes() / 2**20:.1f} MB resident")

    # --- concurrent solve wave: micro-batched into block launches --------
    rng = np.random.default_rng(7)
    payloads = [rng.standard_normal(n) for _ in range(clients)]
    latencies = []

    async def solve_client(b):
        start = time.perf_counter()
        response = await server.handle(SolveRequest(model=MODEL, b=b))
        latencies.append((time.perf_counter() - start) * 1000.0)
        return response

    start = time.perf_counter()
    responses = await asyncio.gather(*[solve_client(b) for b in payloads])
    elapsed = time.perf_counter() - start
    batch_sizes = sorted({r.batch_size for r in responses})
    residual = max(
        float(np.linalg.norm(
            operator.matvec(r.x) + NOISE * r.x - b
        ) / np.linalg.norm(b))
        for r, b in zip(responses, payloads)
    )
    lat = np.asarray(latencies)
    print(f"{clients} concurrent solves in {elapsed * 1e3:.1f} ms "
          f"({clients / elapsed:.0f} req/s), batch sizes {batch_sizes}")
    print(f"latency p50/p95/p99: {np.percentile(lat, 50):.1f} / "
          f"{np.percentile(lat, 95):.1f} / {np.percentile(lat, 99):.1f} ms, "
          f"max relative residual {residual:.2e}")

    # --- GP posterior mean through the same batcher ----------------------
    y = np.sin(points[:, 0] * 5.0)
    predict = await server.handle(PredictRequest(model=MODEL, y=y))
    print(f"posterior mean at training inputs: batched={predict.batched}, "
          f"|mean|_inf = {np.abs(predict.mean).max():.3f}")

    # --- built-in telemetry ----------------------------------------------
    health = await server.health()
    stats = server.statistics()
    print(f"health: {health.status}, uptime {health.uptime_seconds:.1f}s, "
          f"mean batch size {stats['batching']['mean_batch_size']:.1f}")

    # --- the same service over HTTP + an OpenMetrics scrape --------------
    http = await serve_http(server)  # 127.0.0.1, OS-assigned port
    reader, writer = await asyncio.open_connection("127.0.0.1", http.port)
    body = json.dumps({"model": MODEL, "b": payloads[0].tolist()}).encode()
    writer.write(
        f"POST /v1/solve HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n".encode() + body
    )
    writer.write(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    await http.aclose()

    solve_head, _, rest = raw.partition(b"\r\n\r\n")
    status = solve_head.split(None, 2)[1].decode()
    scrape = rest.split(b"\r\n\r\n", 1)[1].decode()
    metric_lines = [l for l in scrape.splitlines() if l and not l.startswith("#")]
    ok = (
        status == "200"
        and scrape.rstrip().endswith("# EOF")
        and any(l.startswith("repro_serve_solve_latency_ms") for l in metric_lines)
    )
    print(f"HTTP solve status {status}; /metrics scrape: "
          f"{len(metric_lines)} samples, terminator + serve latency series "
          f"{'present' if ok else 'MISSING'}")

    await server.aclose()
    print("serve demo:", "OK" if ok and residual < 1e-8 else "FAILED")


def main(n: int = 4096) -> None:
    clients = int(os.environ.get("REPRO_SERVE_DEMO_CLIENTS", "32"))
    asyncio.run(run_demo(n, clients))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4096)

"""Compressing multifrontal frontal matrices: H2 vs HSS vs HODLR (Fig. 6b workflow).

Extracts the root-separator frontal matrix (exact Schur complement) of a 3D
Poisson problem, clusters the separator-plane unknowns geometrically and
compresses the front with three hierarchical formats, reporting memory and
measured error for each — the comparison behind Fig. 6(b) of the paper.

Run with:  python examples/frontal_compression.py [grid]
"""

import sys

import numpy as np

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    build_hodlr,
    compress,
)
from repro.diagnostics import dense_relative_error, format_table
from repro.multifrontal import root_frontal_matrix


def main(grid: int = 20) -> None:
    print(f"== Frontal-matrix compression for a {grid}^3 Poisson problem ==")
    front = root_frontal_matrix((grid, grid, grid))
    print(f"root separator front: {front.size} x {front.size}")

    tree = ClusterTree.build(front.points, leaf_size=32)
    dense = front.matrix[np.ix_(tree.perm, tree.perm)]
    extractor = DenseEntryExtractor(dense)
    tolerance = 1e-6

    rows = []

    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    h2 = H2Constructor(
        partition,
        DenseOperator(dense),
        extractor,
        ConstructionConfig(tolerance=tolerance, sample_block_size=32),
        seed=1,
    ).construct()
    rows.append(
        [
            "H2 (strong admissibility, ours)",
            f"{h2.memory_mb():.2f}",
            f"{dense_relative_error(h2.matrix.to_dense(permuted=True), dense):.2e}",
        ]
    )

    hss = compress(
        format="hss",
        tree=tree,
        operator=DenseOperator(dense),
        extractor=extractor,
        tol=tolerance,
        sample_block_size=32,
        seed=2,
        full_result=True,
    )
    rows.append(
        [
            "HSS (weak admissibility)",
            f"{hss.memory_mb():.2f}",
            f"{dense_relative_error(hss.matrix.to_dense(permuted=True), dense):.2e}",
        ]
    )

    hodlr = build_hodlr(tree, extractor.extract, tol=tolerance)
    rows.append(
        [
            "HODLR (ACA)",
            f"{hodlr.memory_bytes()['total'] / 2**20:.2f}",
            f"{dense_relative_error(hodlr.to_dense(permuted=True), dense):.2e}",
        ]
    )
    rows.append(["dense", f"{dense.nbytes / 2**20:.2f}", "0"])

    print(format_table(["format", "memory [MB]", "rel. error"], rows))


if __name__ == "__main__":
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    main(grid)

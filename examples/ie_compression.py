"""Volume integral-equation compression: accuracy/memory vs tolerance.

Compresses the discretized Helmholtz volume-IE operator (Eq. 9 of the paper,
k = 3) on a uniform 3D point cloud for a range of compression tolerances and
reports how the measured error, the ranks and the memory footprint react —
the trade-off a practitioner tunes when embedding the construction in an IE
solver.

Run with:  python examples/ie_compression.py [N]
"""

import sys

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    GeneralAdmissibility,
    H2Constructor,
    HelmholtzKernel,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import construction_error, format_table


def main(n: int = 8192) -> None:
    print(f"== Helmholtz volume-IE compression (N={n}, k=3) ==")
    points = uniform_cube_points(n, dim=3, seed=4)
    tree = ClusterTree.build(points, leaf_size=64)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))

    kernel = HelmholtzKernel(wavenumber=3.0, diagonal_value=0.0)
    dense = kernel.matrix(tree.points)  # reference operator (reproduction scale)
    operator = DenseOperator(dense)
    extractor = DenseEntryExtractor(dense)

    rows = []
    for tolerance in (1e-3, 1e-5, 1e-7):
        config = ConstructionConfig(tolerance=tolerance, sample_block_size=64)
        result = H2Constructor(partition, DenseOperator(dense), extractor, config, seed=5).construct()
        error = construction_error(result.matrix, operator, num_iterations=8, seed=6)
        lo, hi = result.rank_range
        rows.append(
            [
                f"{tolerance:g}",
                f"{result.elapsed_seconds:.2f}",
                result.total_samples,
                f"{lo}-{hi}",
                f"{result.memory_mb():.1f}",
                f"{error:.2e}",
            ]
        )
    print(
        format_table(
            ["tolerance", "time [s]", "samples", "rank range", "memory [MB]", "rel. error"],
            rows,
            title="Accuracy / memory trade-off",
        )
    )
    print(f"dense matrix for reference: {dense.nbytes / 2**20:.1f} MB")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    main(size)

"""Low-rank update of an existing H2 matrix (the paper's third application).

Workflow mirroring hierarchical-LU / multifrontal Schur-complement updates:

1. build an H2 representation of a covariance matrix;
2. form a random symmetric rank-32 update ``U U^T``;
3. recompress ``H2 + U U^T`` into a new H2 matrix with Algorithm 1, where the
   black-box sampler is the fast H2 matvec plus the low-rank matvec and the
   entry evaluator extracts entries from both representations;
4. validate the result against the exact sum with the power method.

Run with:  python examples/lowrank_update.py [N]
"""

import sys

from repro import (
    ClusterTree,
    ConstructionConfig,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    H2Operator,
    KernelEntryExtractor,
    KernelMatVecOperator,
    LowRankOperator,
    SumOperator,
    build_block_partition,
    random_low_rank,
    recompress_h2,
    uniform_cube_points,
)
from repro.diagnostics import construction_error


def main(n: int = 8192, update_rank: int = 32) -> None:
    print(f"== H2 + rank-{update_rank} low-rank update recompression (N={n}) ==")

    # Step 1: an initial H2 matrix of the exponential covariance kernel.
    points = uniform_cube_points(n, dim=3, seed=7)
    tree = ClusterTree.build(points, leaf_size=64)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    kernel = ExponentialKernel(0.2)
    config = ConstructionConfig(tolerance=1e-6, sample_block_size=64)
    base = H2Constructor(
        partition,
        KernelMatVecOperator(kernel, tree.points),
        KernelEntryExtractor(kernel, tree.points),
        config,
        seed=8,
    ).construct()
    print(
        f"base H2 matrix: {base.elapsed_seconds:.2f}s, {base.total_samples} samples, "
        f"{base.memory_mb():.1f} MB"
    )

    # Step 2: a symmetric low-rank update (permuted ordering, as the H2 matrix).
    update = random_low_rank(n, update_rank, seed=9, symmetric=True, scale=0.5)

    # Step 3: recompress the sum with the same algorithm.
    result = recompress_h2(base.matrix, update, config=config, seed=10)
    print(
        f"recompression: {result.elapsed_seconds:.2f}s, {result.total_samples} samples, "
        f"ranks {result.rank_range[0]}-{result.rank_range[1]}, {result.memory_mb():.1f} MB"
    )

    # Step 4: validate against the exact sum (matrix-free).
    reference = SumOperator([H2Operator(base.matrix), LowRankOperator(update)])
    error = construction_error(result.matrix, reference, num_iterations=8, seed=11)
    print(f"measured relative error of the updated H2 matrix: {error:.3e}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    main(size)

"""Trace a full pipeline with repro.observe and read the results three ways.

One :class:`repro.SpanTracer` rides along on the
:class:`~repro.api.policy.ExecutionPolicy` and every layer reports into it:
the constructor emits per-phase and per-level spans, the compiled apply engine
attributes launches/flops/bytes to ``apply`` spans, the Krylov solvers mark
every iteration, and the GP sweep wraps each hyperparameter evaluation.  The
same trace then serves as

1. a console tree (human skim),
2. a Chrome ``trace_event`` file for https://ui.perfetto.dev (timeline), and
3. the data source of the diagnostics reports — the Fig. 7 phase breakdown and
   the launch attribution are *views over the trace*, matching the legacy
   counters exactly.

On top of the timings, the run demonstrates the health & resource telemetry:
``ExecutionPolicy(health=..., memory_profile=True)`` probes every produced
operator with a stochastic compression-error estimate, triages the solver
residual history, attributes per-span (and hence per-phase) peak memory, and
everything aggregates into one metrics registry exported as OpenMetrics text.

Run with:  python examples/tracing_walkthrough.py [N]
"""

import sys
import tempfile

import numpy as np

from repro import (
    ExecutionPolicy,
    ExponentialKernel,
    Session,
    SpanTracer,
    uniform_cube_points,
)
from repro.diagnostics import PhaseBreakdown, phase_breakdown
from repro.observe import (
    HealthThresholds,
    MetricsRegistry,
    console_tree,
    memory_ledger,
    render_openmetrics,
    save_chrome_trace,
    total_launches,
)

NOISE = 1e-2


def main(n: int = 2048) -> None:
    print(f"== Traced pipeline: construct -> factor -> solve -> GP fit, N={n} ==")

    # One tracer for the whole run; a private metrics registry keeps the
    # demo's histograms separate from the process-wide default.  health=
    # probes every produced operator (warn-only), memory_profile= attaches
    # the per-span peak-memory sampler.
    metrics = MetricsRegistry()
    tracer = SpanTracer(metrics=metrics)
    policy = ExecutionPolicy(
        tracer=tracer, health=HealthThresholds(), memory_profile=True
    )

    points = uniform_cube_points(n, dim=2, seed=0)
    kernel = ExponentialKernel(length_scale=0.2)

    sess = Session(points, policy=policy, seed=1)
    sess.compress(kernel, tol=1e-6).factor(noise=NOISE)
    solve = sess.solve(np.ones(n), tol=1e-8)
    gp = sess.gp(kernel, noise=NOISE)
    gp.fit(np.sin(points[:, 0] * 5.0), length_scales=[0.15, 0.2, 0.3])
    print(f"solve: {solve.iterations} iterations, "
          f"final residual {solve.final_residual:.2e}; "
          f"GP sweep: {len(gp.fit_reports_)} points, "
          f"best length_scale {gp.kernel.length_scale}")

    # 1. Console tree: every span >= 1 ms, indented by nesting.
    print("\n-- span tree (>= 1 ms) " + "-" * 40)
    print(console_tree(tracer, min_duration=1e-3))

    # 2. Chrome trace for Perfetto / chrome://tracing.
    path = save_chrome_trace(
        tracer, tempfile.gettempdir() + "/repro-trace.json"
    )
    print(f"\nchrome trace written to {path} (open in https://ui.perfetto.dev)")

    # 3. Diagnostics as views over the trace.  The construction span carries
    # the phase spans the Fig. 7 breakdown is built from — identical to the
    # legacy timer numbers, because they share one measurement.
    result = sess.result
    from_trace = PhaseBreakdown.from_span(result.trace)
    legacy = phase_breakdown(result)
    assert from_trace.seconds == legacy.seconds
    print("\n-- construction phase shares (from the trace) " + "-" * 18)
    for phase, pct in from_trace.ordered_percentages().items():
        print(f"  {phase:<18} {pct:5.1f}%")

    # Launch attribution is exact: the root spans' inclusive counter deltas
    # sum to precisely what the policy's shared launch counter recorded.
    counter = policy.launch_counter()
    print(f"\nlaunches attributed to spans: {total_launches(tracer)} "
          f"(policy counter total: {counter.total()})")
    assert total_launches(tracer) == counter.total()

    # The duration histograms the tracer feeds per span category.
    print("\n-- span duration histograms " + "-" * 36)
    for name, summary in sorted(metrics.snapshot()["histograms"].items()):
        if not name.startswith("span."):
            continue  # rank/health histograms print in their own sections
        print(f"  {name:<28} count={summary['count']:<4} "
              f"p50={summary['p50'] * 1e3:8.2f} ms  "
              f"p95={summary['p95'] * 1e3:8.2f} ms")

    # 4. Numerical health: the policy probed the constructed operator against
    # exact kernel rows — a flagged report would also have warned through the
    # repro.observe.health logger.
    report = result.health
    print("\n-- operator health probe " + "-" * 39)
    print(f"  est. relative error {report.est_relative_error:.2e} "
          f"(tol {report.tol:g}, flagged={report.flagged})")
    print(f"  compression ratio   {report.compression_ratio:.1f}x dense")
    for level, stats in report.rank_levels.items():
        print(f"  level {level}: ranks {stats['min']:.0f}"
              f"..{stats['max']:.0f} (mean {stats['mean']:.1f})")

    # 5. Memory: per-phase construction peaks (from the span attributes the
    # sampler wrote) and the process-wide category ledger.
    print("\n-- construction peak memory by phase " + "-" * 27)
    for phase, peak in from_trace.ordered_peak_bytes().items():
        print(f"  {phase:<18} {peak / 2**20:7.2f} MiB")
    print("\n-- memory ledger (who holds the bytes) " + "-" * 25)
    for category, nbytes in memory_ledger().by_category().items():
        print(f"  {category:<10} {nbytes / 2**20:7.2f} MiB")

    # 6. OpenMetrics exposition of the same registry — scrape-ready text.
    exposition = render_openmetrics(metrics)
    print("\n-- openmetrics exposition (first 8 lines) " + "-" * 22)
    print("\n".join(exposition.splitlines()[:8]))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)

"""Solve a kernel linear system end-to-end with the solver subsystem.

The workflow the solver subsystem was built for (kernel regression /
integral-equation solves):

1. compress the covariance matrix into an H2 matrix with the bottom-up
   sketching constructor — this is the fast operator;
2. sketch a *loose* HSS approximation of the same system and factor it with
   the HODLR factorization — this is the preconditioner;
3. run CG with and without the preconditioner and compare convergence;
4. cross-check with the near-linear HODLR *direct* solve (plus the
   log-determinant, the other quantity a Gaussian-process workload needs).

Run with:  python examples/kernel_system_solve.py [N]
"""

import sys

import numpy as np

from repro import (
    ClusterTree,
    ConstructionConfig,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    HODLRFactorization,
    HierarchicalPreconditioner,
    KernelEntryExtractor,
    KernelMatVecOperator,
    build_block_partition,
    build_hodlr,
    cg,
    uniform_cube_points,
)
from repro.diagnostics import convergence_table, residual_series

NUGGET = 1e-2


def main(n: int = 4096) -> None:
    print(f"== Kernel system solve: (K + {NUGGET} I) x = b with N={n} ==")

    points = uniform_cube_points(n, dim=2, seed=0)
    tree = ClusterTree.build(points, leaf_size=64)
    kernel = ExponentialKernel(length_scale=0.2)
    operator = KernelMatVecOperator(kernel, tree.points)
    extractor = KernelEntryExtractor(kernel, tree.points)

    # 1. Fast operator: H2 compression on the strong-admissibility partition.
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    result = H2Constructor(
        partition, operator, extractor, ConstructionConfig(tolerance=1e-8), seed=0
    ).construct()
    h2 = result.matrix
    print(f"operator: H2 construction {result.elapsed_seconds:.2f}s, "
          f"{result.memory_mb():.1f} MB, ranks {result.rank_range}")

    def system_matvec(x):
        return h2.matvec(x) + NUGGET * x

    b = np.random.default_rng(1).standard_normal(n)

    # 2. Preconditioner: loose HSS sketch of the same operator, factored.
    preconditioner = HierarchicalPreconditioner.from_operator(
        tree, operator, extractor, tolerance=1e-3, shift=NUGGET, seed=1
    )
    print(f"preconditioner: {preconditioner.statistics()}")

    # 3. CG with and without preconditioning.
    plain = cg(system_matvec, b, tol=1e-10, maxiter=4 * n)
    accelerated = cg(system_matvec, b, tol=1e-10, maxiter=4 * n, M=preconditioner)
    print()
    print(convergence_table({"cg": plain, "cg + HSS preconditioner": accelerated}))
    print()
    print(residual_series(
        {"cg": plain, "cg+M": accelerated},
        every=max(1, plain.iterations // 12),
    ))

    # 4. Direct solve: ACA-HODLR + recursive Woodbury factorization.
    entries = KernelEntryExtractor(kernel, tree.points)

    def shifted_entries(rows, cols):
        block = entries.extract(rows, cols)
        if rows is cols or np.array_equal(rows, cols):
            block = block + NUGGET * np.eye(rows.shape[0])
        return block

    factorization = HODLRFactorization(
        build_hodlr(tree, shifted_entries, tol=1e-11)
    )
    x_direct = factorization.solve(b)
    residual = np.linalg.norm(system_matvec(x_direct) - b) / np.linalg.norm(b)
    sign, logabsdet = factorization.slogdet()
    print()
    print(f"HODLR direct solve: relative residual {residual:.2e}, "
          f"logdet {sign * logabsdet:+.4e}, "
          f"factor memory {factorization.memory_bytes() / 2**20:.1f} MB")
    iterative_vs_direct = np.linalg.norm(accelerated.x - x_direct) / np.linalg.norm(x_direct)
    print(f"preconditioned CG vs direct solve: relative difference {iterative_vs_direct:.2e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4096)

"""Serial vs vectorized (batched) backend: the reproduction's CPU-vs-GPU story.

The paper's GPU speedup comes from fusing all per-node work of a level into a
handful of batched kernel launches.  This example constructs the same H2
matrix with the serial backend (one BLAS call per node, the "CPU" reference)
and the vectorized backend (one stacked call per shape group, the batched
"GPU-style" execution), and reports wall-clock time, the phase breakdown of
Fig. 7 and the kernel-launch statistics of Section IV-B.

Run with:  python examples/backend_comparison.py [N]
"""

import sys

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import format_table, phase_breakdown
from repro.diagnostics.profiling import PHASE_ORDER


def main(n: int = 8192) -> None:
    print(f"== Backend comparison on the 3D covariance problem (N={n}) ==")
    points = uniform_cube_points(n, dim=3, seed=1)
    tree = ClusterTree.build(points, leaf_size=64)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = ExponentialKernel(0.2).matrix(tree.points)
    extractor = DenseEntryExtractor(dense)

    rows = []
    results = {}
    for backend in ("serial", "vectorized"):
        config = ConstructionConfig(tolerance=1e-6, sample_block_size=64, backend=backend)
        result = H2Constructor(
            partition, DenseOperator(dense), extractor, config, seed=2
        ).construct()
        results[backend] = result
        pct = phase_breakdown(result).ordered_percentages()
        rows.append(
            [backend, f"{result.elapsed_seconds:.3f}", result.total_kernel_calls,
             result.total_kernel_launches]
            + [f"{pct[phase]:.1f}" for phase in PHASE_ORDER]
        )

    print(
        format_table(
            ["backend", "time [s]", "batched calls", "launches"]
            + [f"{p} %" for p in PHASE_ORDER],
            rows,
            title="Construction time, launch counts and phase breakdown",
        )
    )
    speedup = results["serial"].elapsed_seconds / results["vectorized"].elapsed_seconds
    print(f"vectorized (batched) speedup over serial: {speedup:.2f}x")
    print(
        "tree depth:", tree.depth,
        "-> batched calls per level:",
        round(results["vectorized"].total_kernel_calls / max(tree.depth, 1), 1),
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    main(size)

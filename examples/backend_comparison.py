"""Serial vs vectorized (batched) backend: the reproduction's CPU-vs-GPU story.

The paper's GPU speedup comes from fusing all per-node work of a level into a
handful of batched kernel launches.  This example constructs the same H2
matrix with the serial backend (one BLAS call per node, the "CPU" reference)
and the vectorized backend (one stacked call per shape group, the batched
"GPU-style" execution), and reports wall-clock time, the phase breakdown of
Fig. 7 and the kernel-launch statistics of Section IV-B.

Run with:  python examples/backend_comparison.py [N]
"""

import sys

from repro import (
    ClusterTree,
    ConstructionConfig,
    DenseEntryExtractor,
    DenseOperator,
    ExponentialKernel,
    GeneralAdmissibility,
    H2Constructor,
    build_block_partition,
    uniform_cube_points,
)
from repro.diagnostics import (
    apply_report,
    construction_report,
    format_table,
    phase_breakdown,
)
from repro.diagnostics.profiling import PHASE_ORDER


def main(n: int = 8192) -> None:
    # The 2D covariance regime of the acceptance benchmarks (PR 2's apply
    # claim and the compiled-construction claim share it).
    print(f"== Backend comparison on the 2D covariance problem (N={n}) ==")
    points = uniform_cube_points(n, dim=2, seed=1)
    tree = ClusterTree.build(points, leaf_size=16)
    partition = build_block_partition(tree, GeneralAdmissibility(eta=0.7))
    dense = ExponentialKernel(0.2).matrix(tree.points)
    extractor = DenseEntryExtractor(dense)

    rows = []
    results = {}
    for backend in ("serial", "vectorized"):
        config = ConstructionConfig(tolerance=1e-6, sample_block_size=64, backend=backend)
        result = H2Constructor(
            partition, DenseOperator(dense), extractor, config, seed=2
        ).construct()
        results[backend] = result
        pct = phase_breakdown(result).ordered_percentages()
        rows.append(
            [backend, f"{result.elapsed_seconds:.3f}", result.total_kernel_calls,
             result.total_kernel_launches]
            + [f"{pct[phase]:.1f}" for phase in PHASE_ORDER]
        )

    print(
        format_table(
            ["backend", "time [s]", "batched calls", "launches"]
            + [f"{p} %" for p in PHASE_ORDER],
            rows,
            title="Construction time, launch counts and phase breakdown",
        )
    )
    speedup = results["serial"].elapsed_seconds / results["vectorized"].elapsed_seconds
    print(f"vectorized (batched) speedup over serial: {speedup:.2f}x")
    print(
        "tree depth:", tree.depth,
        "-> batched calls per level:",
        round(results["vectorized"].total_kernel_calls / max(tree.depth, 1), 1),
    )

    # Construction-side speedup of the compiled engine in the paper's
    # black-box regime (same as recompress_h2): the already-compressed matrix
    # is the fast sampler, so the sweep itself dominates, and the packed
    # level-wise path (the default) is compared against the per-node
    # reference loop (`construct_loop`, the analogue of `matvec_loop`).
    from repro.sketching.operators import H2Operator

    sampler = H2Operator(results["vectorized"].matrix)
    config = ConstructionConfig(
        tolerance=1e-6, sample_block_size=8, backend="vectorized"
    )
    loop_result = H2Constructor(
        partition, sampler, extractor, config, seed=2
    ).construct_loop()
    packed_result = H2Constructor(
        partition, sampler, extractor, config, seed=2
    ).construct_packed()
    packed_report = construction_report(packed_result)
    loop_report = construction_report(loop_result)
    print()
    print(
        format_table(
            ["path", "time [s]", "sweep launches", "gen launches", "launches/round"],
            [
                [
                    report.path,
                    f"{report.elapsed_seconds:.3f}",
                    report.sweep_launches,
                    report.generation_launches,
                    f"{report.sweep_launches_per_round:.0f}",
                ]
                for report in (loop_report, packed_report)
            ],
            title="Compiled construction vs per-node reference loop (vectorized)",
        )
    )
    construction_speedup = (
        loop_result.elapsed_seconds / packed_result.elapsed_seconds
    )
    print(f"compiled construction speedup over the loop: {construction_speedup:.2f}x")

    # The same story holds for *applying* the constructed matrix: the compiled
    # per-level plan (h2.apply_plan()) runs matvec/matmat as O(levels) batched
    # launches on either backend instead of one small GEMM per tree node.
    import numpy as np
    import time

    h2 = results["vectorized"].matrix
    x = np.random.default_rng(0).standard_normal(n)
    h2.matvec(x)  # compile the apply plan
    start = time.perf_counter()
    h2.matvec_loop(x, permuted=True)
    loop_seconds = time.perf_counter() - start
    rows = []
    for backend in ("serial", "vectorized"):
        report = apply_report(h2, backend=backend, k=1, repeats=5)
        rows.append(
            [
                backend,
                f"{report.seconds_per_apply * 1e3:.2f}",
                report.launches_per_apply,
                report.block_products,
                f"{loop_seconds / report.seconds_per_apply:.2f}",
                f"{report.bandwidth_gb_s:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["backend", "matvec [ms]", "launches", "block GEMMs", "speedup vs loop", "GiB/s"],
            rows,
            title=(
                f"Compiled batched apply ({h2.apply_plan().describe()}); "
                f"per-node loop baseline: {loop_seconds * 1e3:.2f} ms"
            ),
        )
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    main(size)
